//! Command-line driver for the differential fuzzer.
//!
//! ```text
//! fuzz_run --seed 0xSYMBOL5 --cases 500 --budget-secs 120
//! fuzz_run --seed 7 --cases 100000 --kind intcode --repro-dir found/ --json
//! ```
//!
//! Exit status: 0 when every case passed, 1 when the oracle found
//! divergences (shrunk reproducers are printed and, with
//! `--repro-dir`, written as corpus files), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use symbol_fuzz::{parse_seed, run_fuzz, FuzzOptions, KindFilter};

const USAGE: &str = "usage: fuzz_run [options]
  --seed S          base seed: decimal, 0x-hex, or any string (hashed)
  --cases N         number of cases to run (default 500)
  --max-steps N     sequential step limit per case (default 200000)
  --budget-secs N   wall-clock budget; stop cleanly when exceeded
  --kind K          prolog | intcode | both (default both)
  --max-failures N  stop after N shrunk findings (default 5)
  --no-vliw         skip the compaction + VLIW simulator stage
  --repro-dir DIR   write shrunk reproducers as corpus files into DIR
  --json            print a JSON report instead of text";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FuzzOptions {
        cases: 500,
        ..FuzzOptions::default()
    };
    let mut json = false;
    let mut repro_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match flag {
                "--seed" => opts.seed = parse_seed(&value(&mut i)?),
                "--cases" => {
                    opts.cases = value(&mut i)?
                        .parse()
                        .map_err(|_| "--cases needs an integer".to_string())?;
                }
                "--max-steps" => {
                    opts.max_steps = value(&mut i)?
                        .parse()
                        .map_err(|_| "--max-steps needs an integer".to_string())?;
                }
                "--budget-secs" => {
                    let secs: u64 = value(&mut i)?
                        .parse()
                        .map_err(|_| "--budget-secs needs an integer".to_string())?;
                    opts.budget = Some(Duration::from_secs(secs));
                }
                "--kind" => {
                    opts.kind = match value(&mut i)?.as_str() {
                        "prolog" => KindFilter::Prolog,
                        "intcode" => KindFilter::IntCode,
                        "both" => KindFilter::Both,
                        other => return Err(format!("unknown kind {other:?}")),
                    };
                }
                "--max-failures" => {
                    opts.max_failures = value(&mut i)?
                        .parse()
                        .map_err(|_| "--max-failures needs an integer".to_string())?;
                }
                "--no-vliw" => opts.check_vliw = false,
                "--repro-dir" => repro_dir = Some(PathBuf::from(value(&mut i)?)),
                "--json" => json = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("fuzz_run: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
        i += 1;
    }

    let report = run_fuzz(&opts);

    if let Some(dir) = &repro_dir {
        if !report.failures.is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fuzz_run: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            for f in &report.failures {
                let path = dir.join(format!(
                    "fuzz-{}-{}-0x{:x}-{}.case",
                    f.case_kind, f.kind_tag, report.seed, f.index
                ));
                if let Err(e) = std::fs::write(&path, &f.reproducer) {
                    eprintln!("fuzz_run: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "fuzz_run: seed 0x{:x}: {}/{} cases ({} prolog, {} intcode) in {:.1}s{}",
            report.seed,
            report.executed,
            report.requested,
            report.prolog_cases,
            report.intcode_cases,
            report.elapsed.as_secs_f64(),
            if report.budget_exhausted {
                " [budget exhausted]"
            } else {
                ""
            }
        );
        for f in &report.failures {
            println!(
                "\nFAILURE at case {} [{}]: {}\n  {}\nshrunk reproducer:\n{}",
                f.index, f.kind_tag, f.case_kind, f.detail, f.reproducer
            );
        }
        if report.clean() {
            println!("fuzz_run: clean");
        } else {
            println!("fuzz_run: {} finding(s)", report.failures.len());
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
