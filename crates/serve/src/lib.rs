//! # symbol-serve
//!
//! The compiled-artifact serving layer of the SYMBOL evaluation
//! system: a versioned, zero-dependency binary format for compiled
//! programs ([`artifact`]), an on-disk cache keyed by source and
//! configuration hashes with atomic publication and corrupt-entry
//! recovery ([`cache`]), and a bounded worker pool answering many
//! independent queries against one shared immutable image
//! ([`server`]).
//!
//! The contract of the whole crate is *panic freedom on untrusted
//! input*: no artifact file — truncated, bit-flipped, misnamed, or
//! from a different format version — and no query can panic the
//! serving process. Corruption is detected (checksummed container,
//! fully validating payload decoders), counted, and healed by
//! recompiling from source.
//!
//! ```no_run
//! use symbol_serve::cache::ArtifactCache;
//! use symbol_serve::server::{QueryServer, ServerConfig};
//! use symbol_intcode::Layout;
//! use symbol_obs::Registry;
//! use std::sync::Arc;
//!
//! let obs = Registry::new();
//! let cache = ArtifactCache::new("artifacts", obs.clone())?;
//! // Warm start: deserializes the artifact instead of recompiling.
//! let compiled = Arc::new(cache.load_compiled("main :- 1 = 1.", Layout::default())?);
//! let server = QueryServer::start(compiled, &ServerConfig::default(), &obs);
//! for id in 0..32 {
//!     server.submit(id);
//! }
//! let results = server.finish();
//! # assert_eq!(results.len(), 32);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod artifact;
pub mod cache;
pub mod server;

pub use artifact::{Artifact, ArtifactKey, Payload, PayloadKind, FORMAT_VERSION, MAGIC};
pub use cache::ArtifactCache;
pub use server::{QueryAnswer, QueryResult, QueryServer, ServerConfig, StatsReport};
