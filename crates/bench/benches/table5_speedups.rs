//! Table 5 — SYMBOL-3 and BAM speed-up over the sequential machine.
//! Times the BAM-model kernel, then regenerates the table.

use std::hint::black_box;

use symbol_bench::compiled;
use symbol_bench::timing::Harness;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::{measure_all, reports};
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn bench(h: &mut Harness) {
    let (cc, run) = compiled("serialise");
    let machine = MachineConfig::bam();
    h.bench_function("table5/bam_model/serialise", |b| {
        b.iter(|| {
            let compacted = compact(
                black_box(&cc.ici),
                &run.stats,
                &machine,
                CompactMode::BamGroups,
                &TracePolicy::default(),
            );
            VliwSim::new(&compacted.program, machine, &cc.layout)
                .run(&SimConfig::default())
                .expect("simulates")
                .cycles
        })
    });
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table5_speedups(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
