//! The observability run report behind the `obs_report` binary.
//!
//! [`collect`] runs the benchmark suite through the fully instrumented
//! experiment driver ([`experiments::measure_suite_obs`]) plus a
//! profiled pass per benchmark (the `PROFILE = true` monomorphizations
//! of both execution engines), and packages every export the report
//! consumes: the human summary table, the per-PC hot-block report, the
//! stable `metrics.json` document, its schema descriptor, and the
//! Chrome Trace Format JSON for Perfetto.
//!
//! The metric schema is pinned by the checked-in `OBS_SCHEMA.json` at
//! the workspace root ([`PINNED_SCHEMA`]); CI fails when a code change
//! adds, removes or relabels a metric without updating the snapshot.
//! [`validate_dump`] goes further than the line diff: it parses an
//! actual `metrics.json` document and checks the version-2 fields
//! (per-histogram quantiles) are really present and finite, and
//! [`validate_timeline`] does the same for a timeline ndjson series.
//!
//! The report also renders the serving tier's incident artifacts:
//! [`render_flight_dump`] turns a flight-recorder ndjson dump into a
//! readable table, and [`render_timeline`] summarizes a timeline
//! series tick by tick.

use std::fmt::Write as _;

use symbol_compactor::{try_compact, CompactMode, TracePolicy};
use symbol_intcode::decode::DecodedEmulator;
use symbol_intcode::emu::{ExecConfig, Outcome};
use symbol_intcode::OpClass;
use symbol_obs::export::{HISTOGRAM_FIELDS, SCHEMA_VERSION};
use symbol_obs::json;
use symbol_obs::timeline::TIMELINE_FIELDS;
use symbol_obs::{Registry, Snapshot, Timeline};
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, SimOutcome};

use crate::benchmarks::{self, Benchmark};
use crate::experiments::{self, BenchResult};
use crate::pipeline::{Compiled, PipelineError};

/// The checked-in metric schema snapshot (workspace root
/// `OBS_SCHEMA.json`). Regenerate with `obs_report --print-schema`
/// after intentionally changing the metric set.
pub const PINNED_SCHEMA: &str = include_str!("../../../OBS_SCHEMA.json");

/// How many hot PCs the report keeps per benchmark by default.
pub const DEFAULT_HOT_PCS: usize = 10;

/// Options of one [`collect`] run.
#[derive(Copy, Clone, Debug)]
pub struct ReportOptions {
    /// Benchmarks to run (defaults to the whole suite).
    pub benches: &'static [Benchmark],
    /// Worker threads for the suite fan-out; `0` means
    /// `available_parallelism`.
    pub threads: usize,
    /// Hot PCs kept per benchmark.
    pub hot_pcs: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            benches: benchmarks::ALL,
            threads: 0,
            hot_pcs: DEFAULT_HOT_PCS,
        }
    }
}

/// One hot program counter of a benchmark's profiled run.
#[derive(Clone, Debug)]
pub struct HotPc {
    /// IntCode op index.
    pub pc: usize,
    /// Times the op was executed.
    pub count: u64,
    /// Instruction class of the op (shared [`OpClass`] table).
    pub class: &'static str,
    /// Times the 2-bit predictor missed this op (conditional branches
    /// only; `0` elsewhere).
    pub mispredicts: u64,
}

/// The profiled-engine measurements of one benchmark: per-PC execution
/// profile with branch-predictor misses from the sequential engine,
/// and slot-level occupancy from the 3-unit trace-scheduled VLIW run.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Total executed ops of the sequential run.
    pub steps: u64,
    /// Total 2-bit-predictor misses.
    pub mispredicts: u64,
    /// Misses over dynamically executed conditional branches.
    pub mispredict_rate: Option<f64>,
    /// The hottest PCs, by execution count.
    pub hot: Vec<HotPc>,
    /// Fraction of all executed ops covered by [`BenchProfile::hot`].
    pub hot_coverage: f64,
    /// Cycles of the 3-unit trace-scheduled run.
    pub sim_cycles: u64,
    /// Mean ops per non-bubble cycle on the 3-unit machine.
    pub mean_occupancy: f64,
    /// Per-class slot utilization on the 3-unit machine.
    pub utilization: [f64; OpClass::COUNT],
    /// Fraction of cycles lost to taken-branch bubbles.
    pub bubble_fraction: f64,
}

/// Everything [`collect`] produces.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Full experiment results, in table order.
    pub results: Vec<BenchResult>,
    /// Profiled-engine measurements, in the same order.
    pub profiles: Vec<BenchProfile>,
    /// The structured metric snapshot.
    pub snapshot: Snapshot,
    /// `metrics.json` (stable schema, diffable).
    pub metrics_json: String,
    /// The value-elided schema descriptor of `metrics_json`.
    pub schema_json: String,
    /// Chrome Trace Format JSON (load in Perfetto / `chrome://tracing`).
    pub trace_json: String,
    /// Timeline ndjson: one tick after the suite run and one after
    /// each profiled benchmark, so the series shows when the work
    /// happened (counter deltas per phase).
    pub timeline_ndjson: String,
}

/// Runs the instrumented suite and the profiled passes.
///
/// # Errors
///
/// Fails if any benchmark does not compile, run and self-check under
/// every configuration; see [`experiments::measure_all_with`].
pub fn collect(opts: &ReportOptions) -> Result<ObsReport, PipelineError> {
    let obs = Registry::new();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let mut timeline = Timeline::new();
    let mut timeline_ndjson = String::new();
    let results = experiments::measure_suite_obs(opts.benches, threads, &obs)?;
    timeline_ndjson.push_str(&timeline.tick(&obs.snapshot(), obs.now_ns()));
    timeline_ndjson.push('\n');
    let mut profiles = Vec::with_capacity(opts.benches.len());
    for b in opts.benches {
        profiles.push(profile_bench(b, opts.hot_pcs, &obs)?);
        timeline_ndjson.push_str(&timeline.tick(&obs.snapshot(), obs.now_ns()));
        timeline_ndjson.push('\n');
    }
    let snapshot = obs.snapshot();
    Ok(ObsReport {
        results,
        profiles,
        metrics_json: snapshot.to_json(),
        schema_json: snapshot.schema_json(),
        trace_json: obs.chrome_trace_json(),
        timeline_ndjson,
        snapshot,
    })
}

/// The `PROFILE = true` pass for one benchmark: sequential engine with
/// the per-PC branch predictor, then the 3-unit trace schedule on the
/// profiled VLIW engine.
fn profile_bench(
    bench: &Benchmark,
    hot_pcs: usize,
    obs: &Registry,
) -> Result<BenchProfile, PipelineError> {
    let labels: &[(&str, &str)] = &[("bench", bench.name)];
    let compiled = Compiled::from_source_obs(bench.source, Default::default(), obs, bench.name)?;
    let _span = obs.span("profile", labels);

    let (outcome, stats, steps, prof) = DecodedEmulator::new(&compiled.decoded, &compiled.layout)
        .run_with_profile(&ExecConfig::default());
    if outcome? != Outcome::Success {
        return Err(PipelineError::WrongAnswer);
    }
    let mispredicts = prof.total_mispredicts();
    obs.counter("emulator.mispredicts", labels).add(mispredicts);

    let hot = stats
        .hot_pcs(hot_pcs)
        .into_iter()
        .map(|(pc, count)| HotPc {
            pc,
            count,
            class: compiled.ici.ops()[pc].class().name(),
            mispredicts: prof.mispredict[pc],
        })
        .collect::<Vec<_>>();
    let hot_ops: u64 = hot.iter().map(|h| h.count).sum();
    let hot_coverage = if steps == 0 {
        0.0
    } else {
        hot_ops as f64 / steps as f64
    };

    let machine = MachineConfig::units(3);
    let compacted = try_compact(
        &compiled.ici,
        &stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    )?;
    let decoded = DecodedVliw::new(&compacted.program, machine);
    let (sim, sim_profile) =
        DecodedVliwSim::new(&decoded, &compiled.layout).run_profiled(&SimConfig::default());
    let sim = sim?;
    if sim.outcome != SimOutcome::Success {
        return Err(PipelineError::WrongAnswer);
    }
    obs.counter("sim.bubble_cycles", labels)
        .add(sim_profile.branch_bubble_cycles);

    Ok(BenchProfile {
        name: bench.name,
        steps,
        mispredicts,
        mispredict_rate: prof.mispredict_rate(&compiled.ici, &stats),
        hot,
        hot_coverage,
        sim_cycles: sim.cycles,
        mean_occupancy: sim_profile.mean_occupancy(),
        utilization: sim_profile.class_utilization(&machine, sim.cycles),
        bubble_fraction: if sim.cycles == 0 {
            0.0
        } else {
            sim_profile.branch_bubble_cycles as f64 / sim.cycles as f64
        },
    })
}

impl ObsReport {
    /// The human summary table: one line per benchmark combining the
    /// experiment results with the profiled-engine measurements.
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>8} {:>7} {:>6} {:>7} {:>22} {:>8}",
            "bench", "steps", "mispr%", "hot%", "x3", "occ3", "util3 m/a/v/c", "bubble%"
        );
        for (r, p) in self.results.iter().zip(&self.profiles) {
            let util = p
                .utilization
                .iter()
                .map(|u| format!("{:.0}", u * 100.0))
                .collect::<Vec<_>>()
                .join("/");
            let _ = writeln!(
                out,
                "{:<10} {:>12} {:>8.2} {:>7.1} {:>6.2} {:>7.2} {:>22} {:>8.1}",
                p.name,
                p.steps,
                p.mispredict_rate.unwrap_or(0.0) * 100.0,
                p.hot_coverage * 100.0,
                r.unit_speedup(3),
                p.mean_occupancy,
                util,
                p.bubble_fraction * 100.0,
            );
        }
        out
    }

    /// The hot-block report: the hottest PCs of every benchmark with
    /// their instruction class and predictor misses — the dynamic mix
    /// of these lines is what reconstructs the paper's Figure 2 from
    /// individual ops.
    pub fn hot_block_report(&self) -> String {
        let mut out = String::new();
        for p in &self.profiles {
            let _ = writeln!(
                out,
                "{}: {} ops, {} mispredicts ({} hot PCs cover {:.1}%)",
                p.name,
                p.steps,
                p.mispredicts,
                p.hot.len(),
                p.hot_coverage * 100.0
            );
            for h in &p.hot {
                let _ = writeln!(
                    out,
                    "  pc {:>5}  {:<8} {:>12} execs {:>8} mispredicts",
                    h.pc, h.class, h.count, h.mispredicts
                );
            }
        }
        out
    }

    /// `Some(message)` when the run's metric schema differs from
    /// [`PINNED_SCHEMA`], `None` when they match.
    pub fn schema_drift(&self) -> Option<String> {
        schema_drift_against(&self.schema_json, PINNED_SCHEMA)
    }
}

/// Compares two schema documents line by line and renders the first
/// divergence as a human-readable message.
pub fn schema_drift_against(actual: &str, pinned: &str) -> Option<String> {
    if actual == pinned {
        return None;
    }
    let mut msg = String::from(
        "metrics.json schema drifted from the checked-in OBS_SCHEMA.json \
         (regenerate with `obs_report --print-schema` if intentional):\n",
    );
    let mut actual_lines = actual.lines();
    let mut pinned_lines = pinned.lines();
    loop {
        match (actual_lines.next(), pinned_lines.next()) {
            (Some(a), Some(p)) if a == p => continue,
            (Some(a), Some(p)) => {
                let _ = writeln!(msg, "  expected: {p}");
                let _ = writeln!(msg, "  actual:   {a}");
                break;
            }
            (Some(a), None) => {
                let _ = writeln!(msg, "  extra line: {a}");
                break;
            }
            (None, Some(p)) => {
                let _ = writeln!(msg, "  missing line: {p}");
                break;
            }
            (None, None) => break,
        }
    }
    Some(msg)
}

/// Validates a `metrics.json` document beyond the line-level schema
/// diff: it must parse, carry the current [`SCHEMA_VERSION`], and
/// every histogram entry must hold all [`HISTOGRAM_FIELDS`] including
/// a `quantiles` object with finite p50/p90/p99.
///
/// # Errors
///
/// Returns the first violation as a human-readable message.
pub fn validate_dump(metrics_json: &str) -> Result<(), String> {
    let doc = json::parse(metrics_json).map_err(|e| format!("metrics.json does not parse: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(json::Value::as_u64)
        .ok_or("metrics.json: missing schema_version")?;
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "metrics.json: schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }
    let hists = doc
        .get("histograms")
        .and_then(json::Value::as_arr)
        .ok_or("metrics.json: missing histograms array")?;
    for h in hists {
        let name = h
            .get("name")
            .and_then(json::Value::as_str)
            .unwrap_or("<unnamed>");
        for field in HISTOGRAM_FIELDS {
            if h.get(field).is_none() {
                return Err(format!("histogram {name}: missing field {field:?}"));
            }
        }
        let q = h.get("quantiles").expect("checked above");
        for p in ["p50", "p90", "p99"] {
            let v = q
                .get(p)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("histogram {name}: quantiles missing {p}"))?;
            if !v.is_finite() {
                return Err(format!("histogram {name}: {p} is not finite"));
            }
        }
    }
    Ok(())
}

/// Validates a timeline ndjson series: every line must parse and hold
/// all [`TIMELINE_FIELDS`], and the tick timestamps must not go
/// backwards.
///
/// # Errors
///
/// Returns the first violation as a human-readable message.
pub fn validate_timeline(ndjson: &str) -> Result<(), String> {
    let mut prev_t = 0u64;
    let mut lines = 0usize;
    for (i, line) in ndjson.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("timeline line {}: {e}", i + 1))?;
        for field in TIMELINE_FIELDS {
            if v.get(field).is_none() {
                return Err(format!("timeline line {}: missing field {field:?}", i + 1));
            }
        }
        let t = v
            .get("t_ns")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("timeline line {}: t_ns is not a u64", i + 1))?;
        if t < prev_t {
            return Err(format!("timeline line {}: t_ns went backwards", i + 1));
        }
        prev_t = t;
        lines += 1;
    }
    if lines == 0 {
        return Err("timeline is empty".into());
    }
    Ok(())
}

/// Renders a flight-recorder ndjson dump (as written by the serving
/// tier's `--flight-dir` triggers, or by `FlightRecorder::to_ndjson`)
/// as a human-readable table. A leading header line (`request_id`,
/// `reason`, `elapsed_ns`, `dropped`) is summarized above the table
/// when present.
///
/// # Errors
///
/// Fails on the first malformed line.
pub fn render_flight_dump(dump: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut rows: Vec<(u64, u64, u64, String, u64, u64)> = Vec::new();
    let mut seen_any = false;
    for (i, line) in dump.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("flight line {}: {e}", i + 1))?;
        if !seen_any && v.get("seq").is_none() {
            // The incident header the serving tier writes first.
            let req = v
                .get("request_id")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("flight line {}: neither record nor header", i + 1))?;
            let reason = v.get("reason").and_then(json::Value::as_str).unwrap_or("?");
            let elapsed = v
                .get("elapsed_ns")
                .and_then(json::Value::as_u64)
                .unwrap_or(0);
            let dropped = v.get("dropped").and_then(json::Value::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "incident: request {req} ({reason}), execute {:.3} ms, {dropped} records dropped",
                elapsed as f64 / 1e6
            );
            seen_any = true;
            continue;
        }
        seen_any = true;
        let num = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("flight line {}: missing {key}", i + 1))
        };
        let kind = v
            .get("kind")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("flight line {}: missing kind", i + 1))?;
        rows.push((
            num("seq")?,
            num("ts_ns")?,
            num("tid")?,
            kind.to_string(),
            num("a")?,
            num("b")?,
        ));
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no flight records)");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>5} {:<14} {:>20} {:>20}",
        "seq", "ts_ns", "tid", "kind", "a", "b"
    );
    for (seq, ts, tid, kind, a, b) in &rows {
        let _ = writeln!(out, "{seq:>8} {ts:>14} {tid:>5} {kind:<14} {a:>20} {b:>20}");
    }
    let _ = writeln!(out, "{} records", rows.len());
    Ok(out)
}

/// Renders a timeline ndjson series as one human-readable line per
/// tick: the timestamp plus the tick's counter deltas, changed gauges
/// and histogram activity.
///
/// # Errors
///
/// Fails on the first malformed line (via [`validate_timeline`]).
pub fn render_timeline(ndjson: &str) -> Result<String, String> {
    validate_timeline(ndjson)?;
    let mut out = String::new();
    for line in ndjson.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).expect("validated above");
        let t = v.get("t_ns").and_then(json::Value::as_u64).unwrap_or(0);
        let _ = write!(out, "t={:>12.3} ms", t as f64 / 1e6);
        let arr = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_arr)
                .cloned()
                .unwrap_or_default()
        };
        let counters = arr("counters");
        let gauges = arr("gauges");
        let hists = arr("histograms");
        let total_delta: u64 = counters
            .iter()
            .filter_map(|c| c.get("delta").and_then(json::Value::as_u64))
            .sum();
        let _ = write!(
            out,
            "  {:>3} counters (+{total_delta})  {:>2} gauges  {:>2} histograms",
            counters.len(),
            gauges.len(),
            hists.len()
        );
        // The busiest counter of the tick anchors the eye.
        let top = counters
            .iter()
            .max_by_key(|c| c.get("delta").and_then(json::Value::as_u64).unwrap_or(0));
        if let Some(top) = top {
            let name = top.get("name").and_then(json::Value::as_str).unwrap_or("?");
            let delta = top.get("delta").and_then(json::Value::as_u64).unwrap_or(0);
            let _ = write!(out, "  top {name} +{delta}");
        }
        out.push('\n');
    }
    Ok(out)
}

/// Renders a `BENCH_sweep.json` document (the `sweep` binary's
/// `sweep-v1` schema) as the human frontier report: the Pareto
/// frontier of hardware cost vs. geomean speedup, and the fastest
/// machine per benchmark — without re-running anything.
///
/// # Errors
///
/// Fails on malformed JSON, a wrong schema tag, or indices that point
/// outside the config table.
pub fn render_sweep_report(doc: &str) -> Result<String, String> {
    let v = json::parse(doc)?;
    if v.get("schema").and_then(json::Value::as_str) != Some("sweep-v1") {
        return Err("not a sweep-v1 report (missing or wrong `schema`)".into());
    }
    let configs = v
        .get("configs")
        .and_then(json::Value::as_arr)
        .ok_or("sweep report: missing `configs`")?;
    let config = |i: u64| -> Result<&json::Value, String> {
        configs
            .get(i as usize)
            .ok_or_else(|| format!("sweep report: config index {i} out of range"))
    };
    let cfg_str = |c: &json::Value, key: &str| -> String {
        c.get(key)
            .and_then(json::Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let cfg_num = |c: &json::Value, key: &str| -> f64 {
        c.get(key).and_then(json::Value::as_f64).unwrap_or(f64::NAN)
    };

    let mut out = String::new();
    let grid = v.get("grid").and_then(json::Value::as_str).unwrap_or("?");
    let benches = v
        .get("benches")
        .and_then(json::Value::as_arr)
        .ok_or("sweep report: missing `benches`")?;
    let _ = writeln!(
        out,
        "Design-space sweep: {} configs x {} benchmarks (grid {grid})",
        configs.len(),
        benches.len()
    );
    if let Some(truncated) = v.get("truncated").and_then(json::Value::as_arr) {
        if !truncated.is_empty() {
            let names: Vec<&str> = truncated.iter().filter_map(json::Value::as_str).collect();
            let _ = writeln!(
                out,
                "TRUNCATED by time budget; skipped: {}",
                names.join(", ")
            );
        }
    }
    out.push('\n');

    let best_overall = v.get("best_overall").and_then(json::Value::as_u64);
    out.push_str("Pareto frontier (hardware cost vs geomean speedup):\n");
    let mut frontier = symbol_analysis::TextTable::new(&["config", "cost", "geomean speedup"]);
    for i in v
        .get("frontier")
        .and_then(json::Value::as_arr)
        .ok_or("sweep report: missing `frontier`")?
        .iter()
        .filter_map(json::Value::as_u64)
    {
        let c = config(i)?;
        let marker = if Some(i) == best_overall {
            " *best"
        } else {
            ""
        };
        frontier.row(vec![
            format!("{}{marker}", cfg_str(c, "label")),
            format!("{:.2}", cfg_num(c, "cost")),
            format!("{:.2}", cfg_num(c, "geomean_speedup")),
        ]);
    }
    out.push_str(&frontier.to_string());

    out.push_str("\nBest machine per benchmark:\n");
    let mut winners = symbol_analysis::TextTable::new(&["benchmark", "config", "speedup"]);
    for w in v
        .get("best_per_bench")
        .and_then(json::Value::as_arr)
        .ok_or("sweep report: missing `best_per_bench`")?
    {
        let i = w
            .get("config")
            .and_then(json::Value::as_u64)
            .ok_or("sweep report: winner without a config index")?;
        let c = config(i)?;
        winners.row(vec![
            cfg_str(w, "bench"),
            cfg_str(c, "label"),
            format!("{:.2}", cfg_num(w, "speedup")),
        ]);
    }
    out.push_str(&winners.to_string());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bench_report() -> ObsReport {
        let opts = ReportOptions {
            benches: &benchmarks::ALL[..1],
            threads: 1,
            hot_pcs: 5,
        };
        collect(&opts).unwrap()
    }

    #[test]
    fn schema_matches_the_checked_in_snapshot() {
        // The schema is value-elided and deduplicated, so a single
        // benchmark exercises the exact metric set of the full suite.
        let r = one_bench_report();
        if let Some(drift) = r.schema_drift() {
            panic!("{drift}");
        }
    }

    #[test]
    fn report_exports_are_populated_and_consistent() {
        let r = one_bench_report();
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.profiles.len(), 1);
        let p = &r.profiles[0];
        assert_eq!(p.name, r.results[0].name);
        assert!(p.steps > 0);
        assert!(!p.hot.is_empty() && p.hot_coverage > 0.0 && p.hot_coverage <= 1.0);
        assert!(p.sim_cycles > 0 && p.mean_occupancy > 0.0);
        assert!(r.metrics_json.contains("\"schema_version\""));
        assert!(r.trace_json.contains("\"traceEvents\""));
        assert!(r.human_table().contains(p.name));
        assert!(r.hot_block_report().contains("execs"));
        // The v2 dump checks are not vacuous: the freshly collected
        // report passes them, and its timeline renders.
        validate_dump(&r.metrics_json).expect("metrics.json validates");
        validate_timeline(&r.timeline_ndjson).expect("timeline validates");
        // One tick after the suite plus one per profiled benchmark.
        assert_eq!(r.timeline_ndjson.lines().count(), 1 + r.profiles.len());
        assert!(render_timeline(&r.timeline_ndjson)
            .expect("timeline renders")
            .contains("counters"));
    }

    #[test]
    fn validate_dump_rejects_broken_documents() {
        assert!(validate_dump("not json").is_err());
        assert!(validate_dump("{\"schema_version\": 1, \"histograms\": []}")
            .unwrap_err()
            .contains("schema_version"));
        let no_quantiles = format!(
            "{{\"schema_version\": {SCHEMA_VERSION}, \"histograms\": \
             [{{\"name\": \"h\", \"labels\": {{}}, \"count\": 1, \"sum\": 1, \
             \"buckets\": []}}]}}"
        );
        assert!(validate_dump(&no_quantiles)
            .unwrap_err()
            .contains("quantiles"));
    }

    #[test]
    fn validate_timeline_rejects_broken_series() {
        assert!(validate_timeline("").unwrap_err().contains("empty"));
        assert!(validate_timeline("{\"t_ns\": 1}\n")
            .unwrap_err()
            .contains("missing field"));
        let backwards = "{\"t_ns\": 5, \"counters\": [], \"gauges\": [], \"histograms\": []}\n\
                         {\"t_ns\": 4, \"counters\": [], \"gauges\": [], \"histograms\": []}\n";
        assert!(validate_timeline(backwards)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn flight_dump_renders_header_and_records() {
        let dump = "{\"request_id\": 42, \"reason\": \"slow\", \"elapsed_ns\": 2500000, \
                    \"dropped\": 0}\n\
                    {\"seq\": 1, \"ts_ns\": 10, \"tid\": 3, \"kind\": \"query_start\", \
                    \"a\": 42, \"b\": 0}\n\
                    {\"seq\": 2, \"ts_ns\": 20, \"tid\": 3, \"kind\": \"query_ok\", \
                    \"a\": 42, \"b\": 99}\n";
        let rendered = render_flight_dump(dump).expect("renders");
        assert!(rendered.contains("request 42 (slow)"));
        assert!(rendered.contains("query_start"));
        assert!(rendered.contains("2 records"));
        // A headerless dump (raw FlightRecorder::to_ndjson) also renders.
        let raw = "{\"seq\": 7, \"ts_ns\": 1, \"tid\": 0, \"kind\": \"mark\", \
                   \"a\": 0, \"b\": 0}\n";
        assert!(render_flight_dump(raw).expect("renders").contains("mark"));
        assert!(render_flight_dump("{\"bogus\": true}").is_err());
    }

    #[test]
    fn schema_drift_reports_first_divergence() {
        assert!(schema_drift_against("a\nb\n", "a\nb\n").is_none());
        let msg = schema_drift_against("a\nx\n", "a\nb\n").unwrap();
        assert!(msg.contains("expected: b") && msg.contains("actual:   x"));
        assert!(schema_drift_against("a\n", "a\nb\n")
            .unwrap()
            .contains("missing line"));
    }

    #[test]
    fn sweep_report_renders_from_its_json() {
        use crate::experiments::sweep::{BenchSweep, GridSpec, SweepReport};
        let grid = GridSpec {
            units: vec![1, 2],
            ..GridSpec::paper()
        };
        let report = SweepReport {
            grid: grid.describe(),
            points: grid.expand(),
            units_chunk: 2,
            benches: vec![BenchSweep {
                name: "nreverse",
                seq_cycles: 1000,
                seq_mem_ops: 100,
                cycles: vec![500, 250],
                mem_ops: vec![100, 110],
            }],
            truncated: vec!["qsort"],
        };
        let rendered = render_sweep_report(&report.to_json()).expect("renders");
        assert!(rendered.contains("Pareto frontier"));
        assert!(rendered.contains("*best"));
        assert!(rendered.contains("nreverse"));
        assert!(rendered.contains("skipped: qsort"));
        // The winner row shows the 2-unit machine's 4.00x speedup.
        assert!(rendered.contains("4.00"), "{rendered}");

        assert!(render_sweep_report("{\"schema\": \"nope\"}").is_err());
        assert!(render_sweep_report("not json").is_err());
    }
}
