//! Run the benchmark suite under full observability and emit the run
//! report: a human summary table, the per-PC hot-block report, the
//! stable `metrics.json`, and a Chrome Trace Format JSON for Perfetto.
//!
//! ```sh
//! cargo run --release -p symbol-core --bin obs_report -- --out report/
//! cargo run --release -p symbol-core --bin obs_report -- --check-schema
//! cargo run --release -p symbol-core --bin obs_report -- --print-schema
//! ```
//!
//! `--check-schema` exits non-zero when the metric schema drifted from
//! the checked-in `OBS_SCHEMA.json`; `--print-schema` prints the
//! current schema (redirect it over `OBS_SCHEMA.json` to re-pin).

use std::path::PathBuf;
use std::process::ExitCode;

use symbol_core::obs_report::{collect, ReportOptions};

fn usage() -> ! {
    eprintln!(
        "usage: obs_report [--out DIR] [--threads N] [--hot N] \
         [--quick] [--check-schema] [--print-schema]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = ReportOptions::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut check_schema = false;
    let mut print_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hot" => {
                opts.hot_pcs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => opts.benches = &symbol_core::benchmarks::ALL[..1],
            "--check-schema" => check_schema = true,
            "--print-schema" => print_schema = true,
            _ => usage(),
        }
    }

    let report = match collect(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs_report: {e}");
            return ExitCode::FAILURE;
        }
    };

    if print_schema {
        print!("{}", report.schema_json);
        return ExitCode::SUCCESS;
    }

    println!("{}", report.human_table());
    println!("{}", report.hot_block_report());
    println!(
        "{} counters, {} gauges, {} histograms in the metric snapshot",
        report.snapshot.counters.len(),
        report.snapshot.gauges.len(),
        report.snapshot.histograms.len()
    );

    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("metrics.json"), &report.metrics_json))
            .and_then(|()| std::fs::write(dir.join("trace.json"), &report.trace_json))
        {
            eprintln!("obs_report: writing report: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} and {} (load trace.json in Perfetto)",
            dir.join("metrics.json").display(),
            dir.join("trace.json").display()
        );
    }

    if check_schema {
        if let Some(drift) = report.schema_drift() {
            eprintln!("{drift}");
            return ExitCode::FAILURE;
        }
        println!("metrics.json schema matches OBS_SCHEMA.json");
    }
    ExitCode::SUCCESS
}
