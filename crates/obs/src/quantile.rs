//! Quantile estimation over the log2-bucketed histograms.
//!
//! The histograms record only bucket counts, so exact quantiles are
//! unavailable — but a log2 bucket bounds the error tightly enough
//! for latency triage: [`QuantileView`] walks the cumulative bucket
//! counts to the bucket containing the requested rank and linearly
//! interpolates inside its `[lo, hi]` range. `max` is the upper bound
//! of the last non-empty bucket, i.e. an upper estimate of the true
//! maximum within one bucket width.

use crate::export::{BucketSample, HistogramSample};

/// p50/p90/p99/max of one (or a merged set of) histogram snapshot(s).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct QuantileView {
    /// Samples the view is computed over.
    pub count: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Upper bound of the last non-empty bucket.
    pub max: u64,
}

impl QuantileView {
    /// The view of one histogram snapshot, `None` when it is empty.
    pub fn from_sample(h: &HistogramSample) -> Option<QuantileView> {
        Self::from_buckets(&h.buckets)
    }

    /// The view of several histogram snapshots merged (e.g. the same
    /// metric across label sets), `None` when all are empty.
    pub fn from_samples<'a>(
        samples: impl IntoIterator<Item = &'a HistogramSample>,
    ) -> Option<QuantileView> {
        let mut merged: Vec<BucketSample> = Vec::new();
        for h in samples {
            for b in &h.buckets {
                match merged.iter_mut().find(|m| m.lo == b.lo) {
                    Some(m) => m.count += b.count,
                    None => merged.push(b.clone()),
                }
            }
        }
        merged.sort_by_key(|b| b.lo);
        Self::from_buckets(&merged)
    }

    fn from_buckets(buckets: &[BucketSample]) -> Option<QuantileView> {
        let count: u64 = buckets.iter().map(|b| b.count).sum();
        if count == 0 {
            return None;
        }
        Some(QuantileView {
            count,
            p50: quantile(buckets, count, 0.50),
            p90: quantile(buckets, count, 0.90),
            p99: quantile(buckets, count, 0.99),
            max: buckets.last().map_or(0, |b| b.hi),
        })
    }

    /// Whether every estimate is finite (what the serve smoke test
    /// asserts about a live p99).
    pub fn is_finite(&self) -> bool {
        self.p50.is_finite() && self.p90.is_finite() && self.p99.is_finite()
    }
}

/// The `q`-quantile (0 < q <= 1) of `total` samples distributed over
/// `buckets` (sorted by `lo`, counts summing to `total`), by linear
/// interpolation inside the bucket containing the rank.
pub fn quantile(buckets: &[BucketSample], total: u64, q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if total == 0 {
        return 0.0;
    }
    // 1-based rank of the requested sample.
    let rank = (q * total as f64).ceil().max(1.0);
    let mut below = 0u64;
    for b in buckets {
        if b.count == 0 {
            continue;
        }
        let upto = below + b.count;
        if (upto as f64) >= rank {
            // The rank falls inside this bucket: interpolate between
            // its inclusive bounds by the fraction of the bucket's
            // samples below the rank.
            let into = (rank - below as f64) / b.count as f64;
            return b.lo as f64 + into * (b.hi - b.lo) as f64;
        }
        below = upto;
    }
    buckets.last().map_or(0.0, |b| b.hi as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn view_of(values: &[u64]) -> QuantileView {
        let r = Registry::new();
        let h = r.histogram("t", &[]);
        for &v in values {
            h.record(v);
        }
        QuantileView::from_sample(&r.snapshot().histograms[0]).expect("non-empty")
    }

    #[test]
    fn empty_histogram_has_no_view() {
        let r = Registry::new();
        r.histogram("empty", &[]);
        assert_eq!(QuantileView::from_sample(&r.snapshot().histograms[0]), None);
    }

    #[test]
    fn single_sample_quantiles_stay_in_its_bucket() {
        let v = view_of(&[1000]);
        assert_eq!(v.count, 1);
        // Bucket [512, 1023]: every quantile must land inside it.
        for q in [v.p50, v.p90, v.p99] {
            assert!((512.0..=1023.0).contains(&q), "{q}");
        }
        assert_eq!(v.max, 1023);
        assert!(v.is_finite());
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        // 90 fast samples (~bucket [64,127]) and 10 slow (~[4096,8191]).
        let mut values = vec![100u64; 90];
        values.extend(vec![5000u64; 10]);
        let v = view_of(&values);
        assert_eq!(v.count, 100);
        assert!(v.p50 <= v.p90 && v.p90 <= v.p99, "{v:?}");
        assert!(
            (64.0..=127.0).contains(&v.p50),
            "median lands in the fast bucket: {}",
            v.p50
        );
        assert!(
            (4096.0..=8191.0).contains(&v.p99),
            "p99 lands in the slow bucket: {}",
            v.p99
        );
        assert_eq!(v.max, 8191);
    }

    #[test]
    fn interpolation_moves_inside_a_bucket() {
        // All 100 samples in bucket [64, 127]: p10 must sit left of
        // p90 inside the bucket.
        let r = Registry::new();
        let h = r.histogram("t", &[]);
        for _ in 0..100 {
            h.record(100);
        }
        let s = &r.snapshot().histograms[0];
        let p10 = quantile(&s.buckets, 100, 0.10);
        let p90 = quantile(&s.buckets, 100, 0.90);
        assert!(p10 < p90, "{p10} < {p90}");
        assert!((64.0..=127.0).contains(&p10) && (64.0..=127.0).contains(&p90));
    }

    #[test]
    fn merged_view_sums_label_sets() {
        let r = Registry::new();
        r.histogram("lat", &[("tier", "decoded")]).record(100);
        r.histogram("lat", &[("tier", "fused")]).record(5000);
        let snap = r.snapshot();
        let merged = QuantileView::from_samples(snap.histograms.iter().filter(|h| h.name == "lat"))
            .expect("non-empty");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.max, 8191, "max comes from the slower label set");
        assert!(
            merged.p50 < 1024.0,
            "median from the faster one: {merged:?}"
        );
    }
}
