% prover -- a propositional sequent-calculus theorem prover in the
% style of Warren's PROVER benchmark. Proves a batch of classical
% tautologies (and refutes one non-theorem) over and/or/not/imp.

main :-
    prove(imp(imp(a, b), imp(imp(b, c), imp(a, c)))),
    prove(imp(and(a, b), a)),
    prove(imp(a, or(a, b))),
    prove(imp(imp(imp(a, b), a), a)),
    prove(or(a, not(a))),
    prove(imp(not(not(a)), a)),
    prove(imp(not(and(a, b)), or(not(a), not(b)))),
    prove(imp(and(imp(a, b), imp(b, c)), imp(a, c))),
    prove(imp(and(or(a, b), and(imp(a, c), imp(b, c))), c)),
    \+ prove(imp(a, b)).

prove(F) :- pr([], [F]).

% pr(Gamma, Delta): the sequent Gamma |- Delta is provable.
pr(L, R) :- memb(X, L), memb(X, R).
pr(L, R) :- selq(not(X), L, L1), pr(L1, [X|R]).
pr(L, R) :- selq(not(X), R, R1), pr([X|L], R1).
pr(L, R) :- selq(and(X, Y), L, L1), pr([X,Y|L1], R).
pr(L, R) :- selq(and(X, Y), R, R1), pr(L, [X|R1]), pr(L, [Y|R1]).
pr(L, R) :- selq(or(X, Y), R, R1), pr(L, [X,Y|R1]).
pr(L, R) :- selq(or(X, Y), L, L1), pr([X|L1], R), pr([Y|L1], R).
pr(L, R) :- selq(imp(X, Y), R, R1), pr([X|L], [Y|R1]).
pr(L, R) :- selq(imp(X, Y), L, L1), pr(L1, [X|R]), pr([Y|L1], R).

memb(X, [X|_]).
memb(X, [_|T]) :- memb(X, T).

selq(X, [X|T], T).
selq(X, [Y|T], [Y|R]) :- selq(X, T, R).
