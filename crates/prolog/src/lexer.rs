//! Tokenizer for Prolog source text.
//!
//! Follows Edinburgh-style lexical conventions: alphanumeric and quoted
//! and symbolic atoms, `_`/uppercase variables, integers (including
//! `0'c` character codes), `%` and `/* */` comments. The clause
//! terminator is a `.` followed by layout or end of input.

use crate::error::ParseError;
use std::fmt;

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Named, quoted or symbolic atom, `!`, `;`.
    Atom(String),
    /// Variable name (starts with uppercase or `_`).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// `(` immediately following an atom (functor application).
    FunctorParen,
    /// Free-standing `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,` — argument separator / conjunction operator.
    Comma,
    /// `|` — list tail separator.
    Bar,
    /// Clause terminator `.`.
    End,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Atom(a) => write!(f, "{a}"),
            Tok::Var(v) => write!(f, "{v}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::FunctorParen | Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Bar => write!(f, "|"),
            Tok::End => write!(f, "."),
        }
    }
}

const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";

fn is_symbolic(c: char) -> bool {
    SYMBOLIC.contains(c)
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src` completely.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input (unterminated quote or
/// block comment, bad character literal, stray character).
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: std::marker::PhantomData<&'a str>,
    out: Vec<Token>,
    /// Position just past the previous token, if it was an atom —
    /// used to distinguish `f(` (functor application) from `f (`.
    prev_atom_end: Option<(usize, usize)>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
            out: Vec::new(),
            prev_atom_end: None,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    fn push(&mut self, kind: Tok, line: usize, col: usize) {
        self.prev_atom_end = match kind {
            Tok::Atom(_) => Some((self.line, self.col)),
            _ => None,
        };
        self.out.push(Token { kind, line, col });
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '%' => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '/' if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                '(' => {
                    // A '(' directly after an atom (no layout) is functor
                    // application.
                    let kind = if self.prev_atom_end == Some((line, col)) {
                        Tok::FunctorParen
                    } else {
                        Tok::LParen
                    };
                    self.bump();
                    self.push(kind, line, col);
                }
                ')' => {
                    self.bump();
                    self.push(Tok::RParen, line, col);
                }
                '[' => {
                    self.bump();
                    self.push(Tok::LBracket, line, col);
                }
                ']' => {
                    self.bump();
                    self.push(Tok::RBracket, line, col);
                }
                '{' => {
                    self.bump();
                    self.push(Tok::LBrace, line, col);
                }
                '}' => {
                    self.bump();
                    self.push(Tok::RBrace, line, col);
                }
                ',' => {
                    self.bump();
                    self.push(Tok::Comma, line, col);
                }
                '|' => {
                    self.bump();
                    self.push(Tok::Bar, line, col);
                }
                '!' => {
                    self.bump();
                    self.push(Tok::Atom("!".into()), line, col);
                }
                ';' => {
                    self.bump();
                    self.push(Tok::Atom(";".into()), line, col);
                }
                '\'' => {
                    self.bump();
                    let name = self.quoted()?;
                    self.push(Tok::Atom(name), line, col);
                }
                '0' if self.peek2() == Some('\'') => {
                    self.bump();
                    self.bump();
                    let ch = self
                        .bump()
                        .ok_or_else(|| self.err("bad character literal"))?;
                    self.push(Tok::Int(ch as i64), line, col);
                }
                c if c.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        if let Some(v) = d.to_digit(10) {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add(v as i64))
                                .ok_or_else(|| self.err("integer literal overflows i64"))?;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Int(n), line, col);
                }
                c if c.is_ascii_lowercase() => {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_cont(c) {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Atom(name), line, col);
                }
                c if c.is_ascii_uppercase() || c == '_' => {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_cont(c) {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Var(name), line, col);
                }
                c if is_symbolic(c) => {
                    let mut sym = String::new();
                    while let Some(c) = self.peek() {
                        if is_symbolic(c) {
                            sym.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // A lone '.' followed by layout or EOF ends the clause.
                    if sym == "." {
                        self.push(Tok::End, line, col);
                    } else {
                        self.push(Tok::Atom(sym), line, col);
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            }
        }
        Ok(self.out)
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        name.push('\'');
                    } else {
                        return Ok(name);
                    }
                }
                Some('\\') => match self.bump() {
                    Some('n') => name.push('\n'),
                    Some('t') => name.push('\t'),
                    Some('\\') => name.push('\\'),
                    Some('\'') => name.push('\''),
                    Some(c) => name.push(c),
                    None => return Err(self.err("unterminated quoted atom")),
                },
                Some(c) => name.push(c),
                None => return Err(self.err("unterminated quoted atom")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            kinds("foo(a, B)."),
            vec![
                Tok::Atom("foo".into()),
                Tok::FunctorParen,
                Tok::Atom("a".into()),
                Tok::Comma,
                Tok::Var("B".into()),
                Tok::RParen,
                Tok::End,
            ]
        );
    }

    #[test]
    fn symbolic_atoms_and_end() {
        assert_eq!(
            kinds("a :- b."),
            vec![
                Tok::Atom("a".into()),
                Tok::Atom(":-".into()),
                Tok::Atom("b".into()),
                Tok::End,
            ]
        );
    }

    #[test]
    fn end_vs_symbolic_dot() {
        // `=..` is a single symbolic atom, not `=` followed by End.
        assert_eq!(
            kinds("a =.. b."),
            vec![
                Tok::Atom("a".into()),
                Tok::Atom("=..".into()),
                Tok::Atom("b".into()),
                Tok::End,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a. % line comment\n/* block \n comment */ b."),
            vec![
                Tok::Atom("a".into()),
                Tok::End,
                Tok::Atom("b".into()),
                Tok::End
            ]
        );
    }

    #[test]
    fn char_code_literal() {
        assert_eq!(kinds("0'a."), vec![Tok::Int(97), Tok::End]);
    }

    #[test]
    fn quoted_atom_with_escape() {
        assert_eq!(
            kinds("'hello world' 'it''s'."),
            vec![
                Tok::Atom("hello world".into()),
                Tok::Atom("it's".into()),
                Tok::End
            ]
        );
    }

    #[test]
    fn list_tokens() {
        assert_eq!(
            kinds("[X|T]."),
            vec![
                Tok::LBracket,
                Tok::Var("X".into()),
                Tok::Bar,
                Tok::Var("T".into()),
                Tok::RBracket,
                Tok::End
            ]
        );
    }

    #[test]
    fn paren_after_space_is_not_functor_paren() {
        assert_eq!(
            kinds("a (b)."),
            vec![
                Tok::Atom("a".into()),
                Tok::LParen,
                Tok::Atom("b".into()),
                Tok::RParen,
                Tok::End
            ]
        );
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(tokenize("99999999999999999999.").is_err());
    }

    #[test]
    fn variables_and_underscore() {
        assert_eq!(
            kinds("X _foo _."),
            vec![
                Tok::Var("X".into()),
                Tok::Var("_foo".into()),
                Tok::Var("_".into()),
                Tok::End
            ]
        );
    }
}
