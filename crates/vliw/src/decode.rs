//! Pre-decoded micro-op execution engine for the VLIW simulator.
//!
//! [`DecodedVliw`] lowers a scheduled [`VliwProgram`] once, at load
//! time, for one specific [`MachineConfig`]:
//!
//! * every long-instruction word's slots become dense per-class issue
//!   records (`DecodedSlot`s) with register ids, immediates and the
//!   (at most two) source registers of the latency check pre-extracted
//!   — the per-cycle `Vec` allocations of the legacy issue loop
//!   (`Op::uses()`, the write buffers) are gone,
//! * the static resource verdict of each word — issue width, per-class
//!   slot budgets, unit conflicts, the prototype's format restriction —
//!   is evaluated **once** per word by
//!   [`crate::sim::check_word_resources`] and stored, so the issue loop
//!   replays a precomputed `Option<SimError>` instead of re-matching
//!   slots against classes every cycle,
//! * direct branch targets are pre-resolved instruction indices and the
//!   per-word class-operation counts are pre-summed.
//!
//! [`DecodedVliwSim`] executes the decoded form and is **bit-identical**
//! to [`crate::sim::VliwSim`]: same [`SimResult`] (cycles, instruction
//! and op counts, taken branches, class ops) and same [`SimError`]
//! values, asserted by the workspace differential suite.

use symbol_intcode::layout::Layout;
use symbol_intcode::{AluOp, Cond, Label, Op, OpClass, Operand, Tag, Word};

use crate::machine::MachineConfig;
use crate::program::VliwProgram;
use crate::sim::{check_word_resources, SimConfig, SimError, SimOutcome, SimResult};

/// Sentinel for "no register" in a [`DecodedSlot`]'s use list and for
/// "no address" in a resolved target.
pub(crate) const NONE: u32 = u32::MAX;

/// The operation payload of one decoded slot: operands resolved to
/// plain indices, the register/immediate alternative monomorphized
/// into separate kinds, and branch targets resolved to instruction
/// indices (`NONE` = the label has no address in this program; taking
/// such a branch reports [`SimError::UnmappedLabel`] with the kept
/// label id, exactly like the legacy lazy resolution).
#[derive(Copy, Clone, Debug)]
pub(crate) enum SlotMicro {
    Ld {
        d: u32,
        base: u32,
        off: i32,
    },
    St {
        s: u32,
        base: u32,
        off: i32,
    },
    Mv {
        d: u32,
        s: u32,
    },
    MvI {
        d: u32,
        w: Word,
    },
    AluRR {
        op: AluOp,
        d: u32,
        a: u32,
        b: u32,
    },
    AluRI {
        op: AluOp,
        d: u32,
        a: u32,
        imm: i64,
    },
    AddARR {
        d: u32,
        a: u32,
        b: u32,
    },
    AddARI {
        d: u32,
        a: u32,
        imm: i64,
    },
    MkTag {
        d: u32,
        s: u32,
        tag: Tag,
    },
    BrRR {
        cond: Cond,
        a: u32,
        b: u32,
        t: u32,
        l: u32,
    },
    BrRI {
        cond: Cond,
        a: u32,
        imm: i64,
        t: u32,
        l: u32,
    },
    BrTag {
        a: u32,
        tag: Tag,
        eq: bool,
        t: u32,
        l: u32,
    },
    BrWord {
        a: u32,
        w: Word,
        eq: bool,
        t: u32,
        l: u32,
    },
    BrWEq {
        a: u32,
        b: u32,
        eq: bool,
        t: u32,
        l: u32,
    },
    Jmp {
        t: u32,
        l: u32,
    },
    JmpR {
        r: u32,
    },
    Halt {
        success: bool,
    },
}

/// One pre-decoded issue record.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DecodedSlot {
    /// Source registers read by the op (`NONE`-padded), extracted once
    /// so the per-cycle latency check never allocates.
    pub(crate) uses: [u32; 2],
    /// Whether faults of this op are dismissed (compactor speculation).
    pub(crate) speculative: bool,
    /// The operation.
    pub(crate) op: SlotMicro,
}

/// One pre-decoded instruction word: a dense slice into the flat slot
/// vector plus everything about the word that is static per machine.
#[derive(Clone, Debug)]
pub(crate) struct DecodedWord {
    /// First slot index in [`DecodedVliw::slots`].
    pub(crate) first: u32,
    /// Number of slots.
    pub(crate) len: u32,
    /// Pre-summed executed-op counts per class (memory, ALU, move,
    /// control).
    pub(crate) class_counts: [u16; OpClass::COUNT],
    /// Pre-evaluated static resource verdict: the error the legacy
    /// simulator would raise on every issue of this word, or `None`
    /// when the word fits the machine.
    pub(crate) fault: Option<SimError>,
}

/// A [`VliwProgram`] lowered to the flat issue-record form for one
/// specific machine configuration.
#[derive(Clone, Debug)]
pub struct DecodedVliw {
    pub(crate) words: Vec<DecodedWord>,
    pub(crate) slots: Vec<DecodedSlot>,
    /// Dense label id → instruction index (`NONE` = unbound), for the
    /// indirect jumps that must still resolve at run time.
    pub(crate) label_pc: Vec<u32>,
    pub(crate) machine: MachineConfig,
    pub(crate) entry_pc: usize,
    pub(crate) num_regs: usize,
}

impl DecodedVliw {
    /// Decodes a scheduled program for `machine`. Decoding never fails:
    /// resource violations are recorded per word and reported (exactly
    /// like the legacy simulator) when the word is first issued.
    ///
    /// # Panics
    ///
    /// Panics if the program has ≥ `u32::MAX` slots or instruction
    /// words (far beyond any schedulable program).
    pub fn new(program: &VliwProgram, machine: MachineConfig) -> Self {
        let instrs = program.instrs();
        assert!(instrs.len() < u32::MAX as usize, "program too large");
        let mut words = Vec::with_capacity(instrs.len());
        let mut slots = Vec::with_capacity(program.num_ops());
        let mut num_regs = 1usize;
        for (at, w) in instrs.iter().enumerate() {
            let first = u32::try_from(slots.len()).expect("slot count fits u32");
            let mut class_counts = [0u16; OpClass::COUNT];
            for s in &w.slots {
                class_counts[s.op.class().index()] += 1;
                let mut uses = [NONE; 2];
                for (k, r) in s.op.uses().into_iter().enumerate() {
                    uses[k] = r.0;
                    num_regs = num_regs.max(r.0 as usize + 1);
                }
                if let Some(r) = s.op.def() {
                    num_regs = num_regs.max(r.0 as usize + 1);
                }
                let t = |l: Label| {
                    let a = program.label_addr(l);
                    if a == usize::MAX {
                        NONE
                    } else {
                        a as u32
                    }
                };
                let op = match s.op {
                    Op::Ld { d, base, off } => SlotMicro::Ld {
                        d: d.0,
                        base: base.0,
                        off,
                    },
                    Op::St { s, base, off } => SlotMicro::St {
                        s: s.0,
                        base: base.0,
                        off,
                    },
                    Op::Mv { d, s } => SlotMicro::Mv { d: d.0, s: s.0 },
                    Op::MvI { d, w } => SlotMicro::MvI { d: d.0, w },
                    Op::Alu { op, d, a, b } => match b {
                        Operand::Reg(b) => SlotMicro::AluRR {
                            op,
                            d: d.0,
                            a: a.0,
                            b: b.0,
                        },
                        Operand::Imm(imm) => SlotMicro::AluRI {
                            op,
                            d: d.0,
                            a: a.0,
                            imm,
                        },
                    },
                    Op::AddA { d, a, b } => match b {
                        Operand::Reg(b) => SlotMicro::AddARR {
                            d: d.0,
                            a: a.0,
                            b: b.0,
                        },
                        Operand::Imm(imm) => SlotMicro::AddARI {
                            d: d.0,
                            a: a.0,
                            imm,
                        },
                    },
                    Op::MkTag { d, s, tag } => SlotMicro::MkTag {
                        d: d.0,
                        s: s.0,
                        tag,
                    },
                    Op::Br { cond, a, b, t: l } => match b {
                        Operand::Reg(b) => SlotMicro::BrRR {
                            cond,
                            a: a.0,
                            b: b.0,
                            t: t(l),
                            l: l.0,
                        },
                        Operand::Imm(imm) => SlotMicro::BrRI {
                            cond,
                            a: a.0,
                            imm,
                            t: t(l),
                            l: l.0,
                        },
                    },
                    Op::BrTag { a, tag, eq, t: l } => SlotMicro::BrTag {
                        a: a.0,
                        tag,
                        eq,
                        t: t(l),
                        l: l.0,
                    },
                    Op::BrWord { a, w, eq, t: l } => SlotMicro::BrWord {
                        a: a.0,
                        w,
                        eq,
                        t: t(l),
                        l: l.0,
                    },
                    Op::BrWEq { a, b, eq, t: l } => SlotMicro::BrWEq {
                        a: a.0,
                        b: b.0,
                        eq,
                        t: t(l),
                        l: l.0,
                    },
                    Op::Jmp { t: l } => SlotMicro::Jmp { t: t(l), l: l.0 },
                    Op::JmpR { r } => SlotMicro::JmpR { r: r.0 },
                    Op::Halt { success } => SlotMicro::Halt { success },
                };
                slots.push(DecodedSlot {
                    uses,
                    speculative: s.speculative,
                    op,
                });
            }
            words.push(DecodedWord {
                first,
                len: w.slots.len() as u32,
                class_counts,
                fault: check_word_resources(w, &machine, at).err(),
            });
        }
        let label_pc = program
            .label_table()
            .iter()
            .map(|&a| if a == usize::MAX { NONE } else { a as u32 })
            .collect();
        DecodedVliw {
            words,
            slots,
            label_pc,
            machine,
            entry_pc: program.label_addr(program.entry()),
            num_regs,
        }
    }

    /// The machine configuration the program was decoded for.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Number of instruction words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Per-cycle machine profile gathered by
/// [`DecodedVliwSim::run_profiled`]: slot occupancy, per-class busy
/// slot-cycles, and stall causes. All counters describe *issued* words
/// — a taken branch's bubble cycles issue nothing and are accounted
/// separately in [`SimProfile::branch_bubble_cycles`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// `occupancy[k]` = number of issued words carrying exactly `k`
    /// ops (length `issue_width + 1`).
    pub occupancy: Vec<u64>,
    /// Busy slot-cycles per class, indexed by [`OpClass::index`].
    pub class_busy: [u64; OpClass::COUNT],
    /// Cycles lost to the pipelined-control bubble of taken branches —
    /// the machine's only stall source (paper §4.3 timing model).
    pub branch_bubble_cycles: u64,
    /// Issued words carrying zero ops (scheduler nops).
    pub empty_words: u64,
}

impl SimProfile {
    /// Mean ops per issued word (0 when nothing issued).
    pub fn mean_occupancy(&self) -> f64 {
        let words: u64 = self.occupancy.iter().sum();
        if words == 0 {
            return 0.0;
        }
        let ops: u64 = self
            .occupancy
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum();
        ops as f64 / words as f64
    }

    /// Per-class utilization against the machine's slot budget over
    /// `cycles` total cycles, indexed by [`OpClass::index`].
    pub fn class_utilization(&self, machine: &MachineConfig, cycles: u64) -> [f64; OpClass::COUNT] {
        OpClass::ALL.map(|c| {
            let budget = machine.slots(c) as u64 * cycles;
            if budget == 0 {
                0.0
            } else {
                self.class_busy[c.index()] as f64 / budget as f64
            }
        })
    }
}

/// The VLIW machine state, executing a [`DecodedVliw`].
#[derive(Debug)]
pub struct DecodedVliwSim<'a> {
    program: &'a DecodedVliw,
    regs: Vec<Word>,
    ready: Vec<u64>,
    mem: Vec<Word>,
    pc: usize,
    /// Reused phase-1 buffers (register writes carry the result-ready
    /// cycle); cleared every issue instead of reallocated.
    reg_writes: Vec<(u32, Word, u64)>,
    mem_writes: Vec<(i64, Word)>,
    written: Vec<u32>,
}

impl<'a> DecodedVliwSim<'a> {
    /// Creates a simulator with zeroed state.
    pub fn new(program: &'a DecodedVliw, layout: &Layout) -> Self {
        DecodedVliwSim {
            program,
            regs: vec![Word::int(0); program.num_regs],
            ready: vec![0; program.num_regs],
            mem: vec![Word::int(0); layout.total()],
            pc: program.entry_pc,
            reg_writes: Vec::new(),
            mem_writes: Vec::new(),
            written: Vec::new(),
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on any machine-model violation or
    /// run-time fault; Prolog failure is a normal outcome.
    pub fn run(&mut self, cfg: &SimConfig) -> Result<SimResult, SimError> {
        self.run_loop::<false>(cfg, &mut SimProfile::default())
    }

    /// Like [`DecodedVliwSim::run`] but also gathers the per-cycle
    /// [`SimProfile`] (slot occupancy, class busy slot-cycles, stall
    /// causes). A separate `PROFILE = true` monomorphization of the
    /// same issue loop — the plain `run` path contains none of the
    /// profiling bookkeeping. The [`SimResult`] is bit-identical to the
    /// unprofiled run's.
    ///
    /// The profile is returned even when the run errors, describing the
    /// cycles executed up to the fault.
    ///
    /// # Errors
    ///
    /// Exactly as [`DecodedVliwSim::run`].
    pub fn run_profiled(&mut self, cfg: &SimConfig) -> (Result<SimResult, SimError>, SimProfile) {
        let mut profile = SimProfile {
            occupancy: vec![0; self.program.machine.issue_width + 1],
            ..SimProfile::default()
        };
        let res = self.run_loop::<true>(cfg, &mut profile);
        (res, profile)
    }

    /// The monomorphized issue loop behind [`DecodedVliwSim::run`] and
    /// [`DecodedVliwSim::run_profiled`].
    fn run_loop<const PROFILE: bool>(
        &mut self,
        cfg: &SimConfig,
        profile: &mut SimProfile,
    ) -> Result<SimResult, SimError> {
        let words = self.program.words.as_slice();
        let all_slots = self.program.slots.as_slice();
        let mem_latency = self.program.machine.mem_latency as u64;
        let alu_latency = self.program.machine.alu_latency as u64;
        let branch_penalty = self.program.machine.taken_branch_penalty as u64;
        let mut cycle: u64 = 0;
        let mut executed: u64 = 0;
        let mut ops: u64 = 0;
        let mut taken: u64 = 0;
        let mut class_ops = [0u64; OpClass::COUNT];

        loop {
            if cycle >= cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: cfg.max_cycles,
                });
            }
            let at = self.pc;
            let word = match words.get(at) {
                Some(w) => w,
                None => return Err(SimError::RanOffEnd),
            };
            executed += 1;
            ops += word.len as u64;
            for (acc, &c) in class_ops.iter_mut().zip(&word.class_counts) {
                *acc += c as u64;
            }
            if PROFILE {
                profile.occupancy[word.len as usize] += 1;
                if word.len == 0 {
                    profile.empty_words += 1;
                }
                for (acc, &c) in profile.class_busy.iter_mut().zip(&word.class_counts) {
                    *acc += c as u64;
                }
            }
            if let Some(fault) = &word.fault {
                return Err(fault.clone());
            }
            let slots = &all_slots[word.first as usize..(word.first + word.len) as usize];

            // Phase 1: evaluate everything against the pre-state.
            self.reg_writes.clear();
            self.mem_writes.clear();
            let mut transfer: Option<usize> = None;
            let mut halt: Option<SimOutcome> = None;

            for s in slots {
                // Latency check on every read (use-list order matches
                // the legacy `Op::uses()` order).
                for &r in &s.uses {
                    if r != NONE && self.ready[r as usize] > cycle {
                        return Err(SimError::LatencyViolation { at, reg: r });
                    }
                }
                match s.op {
                    SlotMicro::Ld { d, base, off } => {
                        let addr = self.regs[base as usize].val + off as i64;
                        let w = match self.load(addr, at) {
                            Ok(w) => w,
                            // dismissable speculative load: the value is
                            // dead on the faulting path
                            Err(_) if s.speculative => Word::int(0),
                            Err(e) => return Err(e),
                        };
                        self.reg_writes.push((d, w, cycle + mem_latency));
                    }
                    SlotMicro::St { s: src, base, off } => {
                        let addr = self.regs[base as usize].val + off as i64;
                        self.check_addr(addr, at)?;
                        self.mem_writes.push((addr, self.regs[src as usize]));
                    }
                    SlotMicro::Mv { d, s: src } => {
                        self.reg_writes
                            .push((d, self.regs[src as usize], cycle + 1));
                    }
                    SlotMicro::MvI { d, w } => self.reg_writes.push((d, w, cycle + 1)),
                    SlotMicro::AluRR { op, d, a, b } => {
                        let av = self.regs[a as usize].val;
                        let bv = self.regs[b as usize].val;
                        let v = match op.eval(av, bv) {
                            Some(v) => v,
                            None if s.speculative => 0,
                            None => return Err(SimError::DivideByZero { at }),
                        };
                        self.reg_writes.push((d, Word::int(v), cycle + alu_latency));
                    }
                    SlotMicro::AluRI { op, d, a, imm } => {
                        let av = self.regs[a as usize].val;
                        let v = match op.eval(av, imm) {
                            Some(v) => v,
                            None if s.speculative => 0,
                            None => return Err(SimError::DivideByZero { at }),
                        };
                        self.reg_writes.push((d, Word::int(v), cycle + alu_latency));
                    }
                    SlotMicro::AddARR { d, a, b } => {
                        let aw = self.regs[a as usize];
                        let bv = self.regs[b as usize].val;
                        self.reg_writes.push((
                            d,
                            Word {
                                tag: aw.tag,
                                val: aw.val.wrapping_add(bv),
                            },
                            cycle + alu_latency,
                        ));
                    }
                    SlotMicro::AddARI { d, a, imm } => {
                        let aw = self.regs[a as usize];
                        self.reg_writes.push((
                            d,
                            Word {
                                tag: aw.tag,
                                val: aw.val.wrapping_add(imm),
                            },
                            cycle + alu_latency,
                        ));
                    }
                    SlotMicro::MkTag { d, s: src, tag } => {
                        let v = self.regs[src as usize].val;
                        self.reg_writes
                            .push((d, Word { tag, val: v }, cycle + alu_latency));
                    }
                    SlotMicro::BrRR { cond, a, b, t, l } => {
                        if transfer.is_none()
                            && halt.is_none()
                            && cond.eval(self.regs[a as usize].val, self.regs[b as usize].val)
                        {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::BrRI { cond, a, imm, t, l } => {
                        if transfer.is_none()
                            && halt.is_none()
                            && cond.eval(self.regs[a as usize].val, imm)
                        {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::BrTag { a, tag, eq, t, l } => {
                        if transfer.is_none()
                            && halt.is_none()
                            && (self.regs[a as usize].tag == tag) == eq
                        {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::BrWord { a, w, eq, t, l } => {
                        if transfer.is_none()
                            && halt.is_none()
                            && (self.regs[a as usize] == w) == eq
                        {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::BrWEq { a, b, eq, t, l } => {
                        if transfer.is_none()
                            && halt.is_none()
                            && (self.regs[a as usize] == self.regs[b as usize]) == eq
                        {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::Jmp { t, l } => {
                        if transfer.is_none() && halt.is_none() {
                            transfer = Some(Self::direct(t, l, at)?);
                        }
                    }
                    SlotMicro::JmpR { r } => {
                        if transfer.is_none() && halt.is_none() {
                            let w = self.regs[r as usize];
                            if w.tag != Tag::Cod {
                                return Err(SimError::BadCodeWord { at });
                            }
                            transfer = Some(self.resolve(Label(w.val as u32), at)?);
                        }
                    }
                    SlotMicro::Halt { success } => {
                        if transfer.is_none() && halt.is_none() {
                            halt = Some(if success {
                                SimOutcome::Success
                            } else {
                                SimOutcome::Failure
                            });
                        }
                    }
                }
            }

            // Phase 2: commit.
            self.written.clear();
            for &(r, w, rdy) in &self.reg_writes {
                if self.written.contains(&r) {
                    return Err(SimError::DoubleWrite { at, reg: r });
                }
                self.written.push(r);
                self.regs[r as usize] = w;
                self.ready[r as usize] = rdy;
            }
            for &(addr, w) in &self.mem_writes {
                self.mem[addr as usize] = w;
            }

            if let Some(outcome) = halt {
                return Ok(SimResult {
                    outcome,
                    cycles: cycle + 1,
                    instructions: executed,
                    ops,
                    taken_branches: taken,
                    class_ops,
                });
            }
            match transfer {
                Some(target) => {
                    taken += 1;
                    cycle += 1 + branch_penalty;
                    if PROFILE {
                        profile.branch_bubble_cycles += branch_penalty;
                    }
                    self.pc = target;
                }
                None => {
                    cycle += 1;
                    self.pc = at + 1;
                }
            }
        }
    }

    /// Pre-resolved target of a direct control transfer; the kept label
    /// id is only used to report an unmapped target, deferred to first
    /// execution exactly like the legacy lazy resolution.
    #[inline(always)]
    fn direct(t: u32, l: u32, at: usize) -> Result<usize, SimError> {
        if t == NONE {
            Err(SimError::UnmappedLabel {
                at,
                label: Label(l),
            })
        } else {
            Ok(t as usize)
        }
    }

    /// Dynamic label resolution for indirect jumps whose target lives
    /// in a `Cod`-tagged register at run time.
    #[inline(always)]
    fn resolve(&self, l: Label, at: usize) -> Result<usize, SimError> {
        match self.program.label_pc.get(l.0 as usize) {
            Some(&a) if a != NONE => Ok(a as usize),
            _ => Err(SimError::UnmappedLabel { at, label: l }),
        }
    }

    fn check_addr(&self, addr: i64, at: usize) -> Result<(), SimError> {
        if addr < 0 || addr as usize >= self.mem.len() {
            Err(SimError::BadAddress { at, addr })
        } else {
            Ok(())
        }
    }

    fn load(&self, addr: i64, at: usize) -> Result<Word, SimError> {
        self.check_addr(addr, at)?;
        Ok(self.mem[addr as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{SlotOp, VliwInstr};
    use crate::sim::VliwSim;
    use std::collections::HashMap;
    use symbol_intcode::R;

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    fn word(ops: Vec<Op>) -> VliwInstr {
        VliwInstr {
            slots: ops
                .into_iter()
                .enumerate()
                .map(|(u, op)| SlotOp {
                    unit: u,
                    op,
                    speculative: false,
                })
                .collect(),
        }
    }

    /// Runs a program through both engines and asserts bit-identical
    /// results (success or error alike).
    fn differential(p: &VliwProgram, machine: MachineConfig) {
        let layout = tiny_layout();
        let legacy = VliwSim::new(p, machine, &layout).run(&SimConfig::default());
        let decoded = DecodedVliw::new(p, machine);
        let fast = DecodedVliwSim::new(&decoded, &layout).run(&SimConfig::default());
        match (legacy, fast) {
            (Ok(l), Ok(d)) => {
                assert_eq!(l.outcome, d.outcome, "outcome diverged");
                assert_eq!(l.cycles, d.cycles, "cycles diverged");
                assert_eq!(l.instructions, d.instructions, "instructions diverged");
                assert_eq!(l.ops, d.ops, "ops diverged");
                assert_eq!(l.taken_branches, d.taken_branches, "taken diverged");
                assert_eq!(l.class_ops, d.class_ops, "class_ops diverged");
            }
            (l, d) => assert_eq!(l.err(), d.err(), "errors diverged"),
        }
    }

    fn program(instrs: Vec<VliwInstr>, labels: &[(u32, usize)]) -> VliwProgram {
        let mut map = HashMap::new();
        let mut num = 1;
        for &(l, at) in labels {
            map.insert(Label(l), at);
            num = num.max(l + 1);
        }
        VliwProgram::new(instrs, map, num, Label(0))
    }

    #[test]
    fn decoded_matches_legacy_on_swap_and_branches() {
        let instrs = vec![
            word(vec![
                Op::MvI {
                    d: R(40),
                    w: Word::int(1),
                },
                Op::MvI {
                    d: R(41),
                    w: Word::int(2),
                },
            ]),
            VliwInstr::default(),
            word(vec![
                Op::Mv { d: R(40), s: R(41) },
                Op::Mv { d: R(41), s: R(40) },
            ]),
            VliwInstr::default(),
            word(vec![Op::Br {
                cond: Cond::Ne,
                a: R(41),
                b: Operand::Imm(1),
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
            word(vec![Op::Halt { success: false }]),
        ];
        let p = program(instrs, &[(0, 0), (1, 6)]);
        differential(&p, MachineConfig::units(4));
    }

    #[test]
    fn profiled_run_is_bit_identical_and_accounts_every_cycle() {
        // Same program as the swap test: two 2-op words, two nops, a
        // taken Ne-branch, and the success halt behind label 1.
        let instrs = vec![
            word(vec![
                Op::MvI {
                    d: R(40),
                    w: Word::int(1),
                },
                Op::MvI {
                    d: R(41),
                    w: Word::int(2),
                },
            ]),
            VliwInstr::default(),
            word(vec![
                Op::Mv { d: R(40), s: R(41) },
                Op::Mv { d: R(41), s: R(40) },
            ]),
            VliwInstr::default(),
            word(vec![Op::Br {
                cond: Cond::Ne,
                a: R(41),
                b: Operand::Imm(1),
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
            word(vec![Op::Halt { success: false }]),
        ];
        let p = program(instrs, &[(0, 0), (1, 6)]);
        let machine = MachineConfig::units(4);
        let layout = tiny_layout();
        let decoded = DecodedVliw::new(&p, machine);
        let plain = DecodedVliwSim::new(&decoded, &layout)
            .run(&SimConfig::default())
            .unwrap();
        let (profiled, prof) =
            DecodedVliwSim::new(&decoded, &layout).run_profiled(&SimConfig::default());
        let profiled = profiled.unwrap();
        assert_eq!(plain.outcome, profiled.outcome);
        assert_eq!(plain.cycles, profiled.cycles, "profiling must not retime");
        assert_eq!(plain.class_ops, profiled.class_ops);

        // Every issued word landed in exactly one occupancy bucket.
        let words_issued: u64 = prof.occupancy.iter().sum();
        assert_eq!(words_issued, profiled.instructions);
        assert_eq!(prof.occupancy.len(), machine.issue_width + 1);
        assert_eq!(prof.occupancy[2], 2, "the two swap words");
        assert_eq!(prof.occupancy[1], 2, "branch and halt");
        assert_eq!(prof.empty_words, 2, "the two scheduler nops");
        assert_eq!(prof.occupancy[0], prof.empty_words);

        // Busy slot-cycles per class agree with the class-op counts,
        // and the only stall source is the taken-branch bubble.
        assert_eq!(prof.class_busy, profiled.class_ops);
        assert_eq!(
            prof.branch_bubble_cycles,
            profiled.taken_branches * machine.taken_branch_penalty as u64
        );
        let mean = prof.mean_occupancy();
        assert!((mean - 6.0 / 6.0).abs() < 1e-12, "mean {mean}");
        let util = prof.class_utilization(&machine, profiled.cycles);
        let move_util = util[OpClass::Move.index()];
        // 4 move ops over cycles × 4 move slots.
        assert!(
            (move_util - 4.0 / (profiled.cycles as f64 * 4.0)).abs() < 1e-12,
            "move util {move_util}"
        );
    }

    #[test]
    fn decoded_matches_legacy_on_memory_and_latency() {
        // store + load round trip with the mem-latency gap respected
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(50),
                w: Word::int(3),
            }]),
            VliwInstr::default(),
            word(vec![Op::St {
                s: R(50),
                base: R(50),
                off: 0,
            }]),
            word(vec![Op::Ld {
                d: R(40),
                base: R(50),
                off: 0,
            }]),
            VliwInstr::default(),
            VliwInstr::default(),
            word(vec![Op::BrWEq {
                a: R(40),
                b: R(50),
                eq: true,
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: false }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let p = program(instrs, &[(0, 0), (1, 8)]);
        differential(&p, MachineConfig::units(2));
    }

    #[test]
    fn decoded_matches_legacy_on_latency_violation() {
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(50),
                w: Word::int(3),
            }]),
            VliwInstr::default(),
            word(vec![Op::Ld {
                d: R(40),
                base: R(50),
                off: 0,
            }]),
            word(vec![Op::Mv { d: R(41), s: R(40) }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let p = program(instrs, &[(0, 0)]);
        differential(&p, MachineConfig::units(1));
    }

    #[test]
    fn decoded_matches_legacy_on_double_write_and_overflow() {
        // double write
        let p = program(
            vec![
                word(vec![
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                    Op::MvI {
                        d: R(40),
                        w: Word::int(2),
                    },
                ]),
                word(vec![Op::Halt { success: true }]),
            ],
            &[(0, 0)],
        );
        differential(&p, MachineConfig::units(4));

        // memory-port slot overflow
        let p = program(
            vec![
                word(vec![
                    Op::Ld {
                        d: R(40),
                        base: R(50),
                        off: 0,
                    },
                    Op::Ld {
                        d: R(41),
                        base: R(50),
                        off: 1,
                    },
                ]),
                word(vec![Op::Halt { success: true }]),
            ],
            &[(0, 0)],
        );
        differential(&p, MachineConfig::units(4));
    }

    #[test]
    fn precomputed_fault_carries_the_overflowing_class() {
        let p = program(
            vec![
                word(vec![
                    Op::Ld {
                        d: R(40),
                        base: R(50),
                        off: 0,
                    },
                    Op::Ld {
                        d: R(41),
                        base: R(50),
                        off: 1,
                    },
                ]),
                word(vec![Op::Halt { success: true }]),
            ],
            &[(0, 0)],
        );
        let decoded = DecodedVliw::new(&p, MachineConfig::units(4));
        let err = DecodedVliwSim::new(&decoded, &tiny_layout())
            .run(&SimConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            SimError::SlotOverflow {
                at: 0,
                class: OpClass::Memory
            }
        );
    }

    #[test]
    fn width_overflow_is_its_own_error() {
        let p = program(
            vec![
                word(vec![
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                    Op::MvI {
                        d: R(41),
                        w: Word::int(2),
                    },
                ]),
                word(vec![Op::Halt { success: true }]),
            ],
            &[(0, 0)],
        );
        let machine = MachineConfig {
            issue_width: 1,
            ..MachineConfig::units(2)
        };
        let decoded = DecodedVliw::new(&p, machine);
        let err = DecodedVliwSim::new(&decoded, &tiny_layout())
            .run(&SimConfig::default())
            .unwrap_err();
        assert_eq!(err, SimError::WidthOverflow { at: 0 });
        differential(&p, machine);
    }

    #[test]
    fn unexecuted_overfull_word_is_not_an_error() {
        // The fault is precomputed at decode but must only surface when
        // the word is actually issued — the legacy lazy semantics.
        let p = program(
            vec![
                word(vec![Op::Halt { success: true }]),
                word(vec![
                    Op::Ld {
                        d: R(40),
                        base: R(50),
                        off: 0,
                    },
                    Op::Ld {
                        d: R(41),
                        base: R(50),
                        off: 1,
                    },
                ]),
            ],
            &[(0, 0)],
        );
        differential(&p, MachineConfig::units(4));
        let decoded = DecodedVliw::new(&p, MachineConfig::units(4));
        let r = DecodedVliwSim::new(&decoded, &tiny_layout())
            .run(&SimConfig::default())
            .expect("halts before the bad word");
        assert_eq!(r.outcome, SimOutcome::Success);
    }

    #[test]
    fn decoded_slots_stay_compact() {
        // Cache density is the point: one issue record must not grow
        // past 48 bytes (32-byte op payload + uses + flags).
        assert!(std::mem::size_of::<DecodedSlot>() <= 48);
    }
}
