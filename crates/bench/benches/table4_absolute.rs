//! Table 4 — absolute execution times against the paper's published
//! machine measurements. Times the SYMBOL-3 simulation, then
//! regenerates the table.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use symbol_bench::compiled;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::{measure_all, reports};
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn bench(c: &mut Criterion) {
    let (cc, run) = compiled("serialise");
    let machine = MachineConfig::units(3);
    let compacted = compact(
        &cc.ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    c.bench_function("table4/symbol3_simulation/serialise", |b| {
        b.iter(|| {
            VliwSim::new(black_box(&compacted.program), machine, &cc.layout)
                .run(&SimConfig::default())
                .expect("simulates")
                .cycles
        })
    });
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table4_absolute(&results));
}

criterion_group!(benches, bench);
fn main() {
    benches();
    criterion::Criterion::default().final_summary();
    print_report();
}
