//! Arithmetic expression compilation for `is/2` and the comparisons.

use symbol_prolog::{SymbolTable, Term};

use crate::error::CompileError;
use crate::instr::{ArithOp, Const, Operand};

use super::clause::ClauseCompiler;

/// Maps a functor name to the binary [`ArithOp`] it denotes.
fn binary_op(name: &str) -> Option<ArithOp> {
    Some(match name {
        "+" => ArithOp::Add,
        "-" => ArithOp::Sub,
        "*" => ArithOp::Mul,
        "/" | "//" => ArithOp::Div,
        "mod" => ArithOp::Mod,
        "rem" => ArithOp::Rem,
        "/\\" => ArithOp::And,
        "\\/" => ArithOp::Or,
        "xor" => ArithOp::Xor,
        "<<" => ArithOp::Shl,
        ">>" => ArithOp::Shr,
        _ => return None,
    })
}

/// Compiles the evaluation of arithmetic expression `expr`, emitting
/// code into `cc` and returning the operand holding the integer result.
///
/// Variables are dereferenced and type-checked at run time (`DerefInt`
/// backtracks on non-integers, which is how the machine model treats
/// arithmetic type errors).
///
/// # Errors
///
/// Returns [`CompileError::BadArithmetic`] for expressions built from
/// unknown functors or non-numeric atoms.
pub fn eval(
    cc: &mut ClauseCompiler<'_>,
    expr: &Term,
    symbols: &SymbolTable,
) -> Result<Operand, CompileError> {
    match expr {
        Term::Int(i) => Ok(Operand::Const(Const::Int(*i))),
        Term::Var(v) => {
            let src = cc.var_value_slot(*v);
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::DerefInt { src, dst });
            Ok(Operand::Slot(dst))
        }
        Term::Struct(f, args) if args.len() == 2 && binary_op(symbols.name(*f)).is_some() => {
            let op = binary_op(symbols.name(*f)).expect("guarded");
            let a = eval(cc, &args[0], symbols)?;
            let b = eval(cc, &args[1], symbols)?;
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith { op, a, b, dst });
            Ok(Operand::Slot(dst))
        }
        Term::Struct(f, args) if args.len() == 1 && symbols.name(*f) == "-" => {
            let a = eval(cc, &args[0], symbols)?;
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Sub,
                a: Operand::Const(Const::Int(0)),
                b: a,
                dst,
            });
            Ok(Operand::Slot(dst))
        }
        Term::Struct(f, args) if args.len() == 1 && symbols.name(*f) == "+" => {
            eval(cc, &args[0], symbols)
        }
        Term::Struct(f, args) if args.len() == 1 && symbols.name(*f) == "abs" => {
            // abs(a) = max(a, 0 - a)
            let a = eval(cc, &args[0], symbols)?;
            let neg = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Sub,
                a: Operand::Const(Const::Int(0)),
                b: a,
                dst: neg,
            });
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Max,
                a,
                b: Operand::Slot(neg),
                dst,
            });
            Ok(Operand::Slot(dst))
        }
        Term::Struct(f, args) if args.len() == 2 && symbols.name(*f) == "max" => {
            let a = eval(cc, &args[0], symbols)?;
            let b = eval(cc, &args[1], symbols)?;
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Max,
                a,
                b,
                dst,
            });
            Ok(Operand::Slot(dst))
        }
        Term::Struct(f, args) if args.len() == 2 && symbols.name(*f) == "min" => {
            // min(a, b) = -max(-a, -b)
            let a = eval(cc, &args[0], symbols)?;
            let b = eval(cc, &args[1], symbols)?;
            let na = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Sub,
                a: Operand::Const(Const::Int(0)),
                b: a,
                dst: na,
            });
            let nb = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Sub,
                a: Operand::Const(Const::Int(0)),
                b,
                dst: nb,
            });
            let m = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Max,
                a: Operand::Slot(na),
                b: Operand::Slot(nb),
                dst: m,
            });
            let dst = cc.fresh_temp();
            cc.emit(crate::instr::BamInstr::Arith {
                op: ArithOp::Sub,
                a: Operand::Const(Const::Int(0)),
                b: Operand::Slot(m),
                dst,
            });
            Ok(Operand::Slot(dst))
        }
        other => Err(CompileError::BadArithmetic {
            expr: format!("{}", other.display(symbols)),
        }),
    }
}

/// Maps a comparison goal name to its [`crate::instr::Cmp`].
pub fn comparison(name: &str) -> Option<crate::instr::Cmp> {
    use crate::instr::Cmp;
    Some(match name {
        "=:=" => Cmp::Eq,
        "=\\=" => Cmp::Ne,
        "<" => Cmp::Lt,
        "=<" => Cmp::Le,
        ">" => Cmp::Gt,
        ">=" => Cmp::Ge,
        _ => return None,
    })
}
