//! Amdahl-law speed-up ceilings for the shared-memory model
//! (paper §4.2, Figure 3).
//!
//! With memory operations taking fraction `m` of sequential execution
//! and everything else enhanced by a factor `k`:
//!
//! * if memory executes *separately* from computation (the dotted curve
//!   of Figure 3): `time = m + (1-m)/k`;
//! * if memory can be *completely overlapped* with computation (the
//!   continuous curve): `time = max(m, (1-m)/k)` — which saturates at
//!   `1/m ≈ 3` for the measured `m ≈ 0.32`, the paper's headline limit.

/// Speed-up when memory runs separately from enhanced computation.
pub fn amdahl_separate(mem_fraction: f64, enhancement: f64) -> f64 {
    1.0 / (mem_fraction + (1.0 - mem_fraction) / enhancement)
}

/// Speed-up when memory fully overlaps enhanced computation.
pub fn amdahl_overlapped(mem_fraction: f64, enhancement: f64) -> f64 {
    1.0 / f64::max(mem_fraction, (1.0 - mem_fraction) / enhancement)
}

/// Speed-up ceiling of a machine with `ports` memory ports when
/// memory fully overlaps computation: the §4.2 model generalized from
/// the paper's single shared port. With memory taking fraction `m` of
/// sequential time, `p` ports cut the memory term to `m/p`, so
/// `speedup <= 1 / max(m/p, (1-m)/k)` — and with unbounded computation
/// enhancement the ceiling is simply `p/m`.
pub fn amdahl_ports(mem_fraction: f64, enhancement: f64, ports: f64) -> f64 {
    1.0 / f64::max(mem_fraction / ports, (1.0 - mem_fraction) / enhancement)
}

/// Exact integer cycle floor imposed by the memory-port budget: a
/// machine that accepts at most `ports` memory accesses per cycle
/// needs at least `ceil(mem_ops / ports)` cycles to execute `mem_ops`
/// memory operations. Trace scheduling never *removes* memory
/// operations (speculation and tail duplication only add dynamic
/// executions), so the sequential profile's memory-op count is a hard
/// lower bound on any schedule's — which makes this floor a sound,
/// slop-free invariant for the design-space sweep: no simulated
/// configuration may finish in fewer cycles.
pub fn port_cycle_floor(mem_ops: u64, ports: usize) -> u64 {
    if ports == 0 {
        return u64::MAX;
    }
    mem_ops.div_ceil(ports as u64)
}

/// A sampled speed-up curve over enhancement factors.
#[derive(Clone, Debug)]
pub struct AmdahlCurve {
    /// (enhancement factor, speed-up) samples.
    pub points: Vec<(f64, f64)>,
}

impl AmdahlCurve {
    /// Samples `f` at the given enhancement factors.
    pub fn sample(mem_fraction: f64, factors: &[f64], f: fn(f64, f64) -> f64) -> AmdahlCurve {
        AmdahlCurve {
            points: factors.iter().map(|&k| (k, f(mem_fraction, k))).collect(),
        }
    }

    /// The asymptotic limit of the curve (its last sample).
    pub fn limit(&self) -> f64 {
        self.points.last().map(|&(_, s)| s).unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_limit() {
        // memory 32% => asymptotic speed-up 1/0.32 = 3.125 ≈ 3
        let s = amdahl_overlapped(0.32, 1e9);
        assert!((s - 3.125).abs() < 1e-6);
    }

    #[test]
    fn separate_is_never_faster_than_overlapped() {
        for k in [1.0, 2.0, 4.0, 16.0] {
            assert!(amdahl_separate(0.32, k) <= amdahl_overlapped(0.32, k) + 1e-12);
        }
    }

    #[test]
    fn no_enhancement_means_no_speedup_when_separate() {
        assert!((amdahl_separate(0.32, 1.0) - 1.0).abs() < 1e-12);
        // overlapping memory with computation already helps at k=1:
        // time = max(m, 1-m) = 0.68
        assert!((amdahl_overlapped(0.32, 1.0) - 1.0 / 0.68).abs() < 1e-9);
    }

    #[test]
    fn ports_generalize_the_single_port_ceiling() {
        // One port is exactly the paper's overlapped model.
        for k in [1.0, 4.0, 1e9] {
            assert!((amdahl_ports(0.32, k, 1.0) - amdahl_overlapped(0.32, k)).abs() < 1e-12);
        }
        // Two ports double the asymptotic ceiling: 2/m.
        assert!((amdahl_ports(0.32, 1e12, 2.0) - 2.0 / 0.32).abs() < 1e-6);
        // More ports never lower the ceiling.
        for p in 1..6 {
            assert!(amdahl_ports(0.32, 16.0, p as f64) <= amdahl_ports(0.32, 16.0, (p + 1) as f64));
        }
    }

    #[test]
    fn port_cycle_floor_is_exact() {
        assert_eq!(port_cycle_floor(10, 1), 10);
        assert_eq!(port_cycle_floor(10, 3), 4);
        assert_eq!(port_cycle_floor(9, 3), 3);
        assert_eq!(port_cycle_floor(0, 4), 0);
        assert_eq!(port_cycle_floor(5, 0), u64::MAX);
    }

    #[test]
    fn curve_is_monotone() {
        let c = AmdahlCurve::sample(0.32, &[1.0, 2.0, 3.0, 4.0, 8.0, 16.0], amdahl_overlapped);
        for w in c.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(c.limit() > 3.0);
    }
}
