//! The timeline recorder: periodic [`Snapshot`] diffs as a compact
//! ndjson time series.
//!
//! A single `metrics.json` tells you where a run *ended up*; the
//! timeline tells you *when* the work happened. [`Timeline::tick`]
//! diffs the current snapshot against the previous tick and renders
//! one ndjson line holding only what changed: counter deltas, gauge
//! values, histogram count deltas with their current p50/p99. Ticks
//! with no changes still produce a (nearly empty) line so the series
//! has a regular heartbeat.
//!
//! [`TimelineRecorder`] drives a [`Timeline`] from a background
//! thread at a fixed interval — the live-server mode — while
//! deterministic callers (tests, `obs_report`) call
//! [`Timeline::tick`] themselves.

use std::fmt::Write as _;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::export::Snapshot;
use crate::json;
use crate::quantile::QuantileView;
use crate::Registry;

/// Top-level keys of every timeline ndjson line, in output order
/// (pinned by `OBS_SCHEMA.json`).
pub const TIMELINE_FIELDS: [&str; 4] = ["t_ns", "counters", "gauges", "histograms"];

/// Diffs successive snapshots into ndjson lines.
#[derive(Debug, Default)]
pub struct Timeline {
    prev: Snapshot,
}

impl Timeline {
    /// A timeline whose first tick reports everything as new.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Diffs `snap` against the previous tick and renders one ndjson
    /// line stamped `t_ns` (nanoseconds on whatever clock the caller
    /// uses consistently, e.g. [`Registry::now_ns`]).
    pub fn tick(&mut self, snap: &Snapshot, t_ns: u64) -> String {
        let mut line = String::new();
        let _ = write!(line, "{{\"t_ns\": {t_ns}, \"counters\": [");
        let mut first = true;
        for c in &snap.counters {
            let prev = self
                .prev
                .counters
                .iter()
                .find(|p| p.name == c.name && p.labels == c.labels)
                .map_or(0, |p| p.value);
            let delta = c.value.saturating_sub(prev);
            if delta == 0 {
                continue;
            }
            if !first {
                line.push_str(", ");
            }
            first = false;
            let _ = write!(
                line,
                "{{\"name\": {}, \"labels\": {}, \"delta\": {delta}}}",
                json::string(&c.name),
                json::label_object(&c.labels)
            );
        }
        line.push_str("], \"gauges\": [");
        let mut first = true;
        for g in &snap.gauges {
            let prev = self
                .prev
                .gauges
                .iter()
                .find(|p| p.name == g.name && p.labels == g.labels);
            if prev.is_some_and(|p| p.value == g.value) {
                continue;
            }
            if !first {
                line.push_str(", ");
            }
            first = false;
            let _ = write!(
                line,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json::string(&g.name),
                json::label_object(&g.labels),
                g.value
            );
        }
        line.push_str("], \"histograms\": [");
        let mut first = true;
        for h in &snap.histograms {
            let prev = self
                .prev
                .histograms
                .iter()
                .find(|p| p.name == h.name && p.labels == h.labels)
                .map_or(0, |p| p.count);
            let delta = h.count.saturating_sub(prev);
            if delta == 0 {
                continue;
            }
            if !first {
                line.push_str(", ");
            }
            first = false;
            let q = QuantileView::from_sample(h).unwrap_or_default();
            let _ = write!(
                line,
                "{{\"name\": {}, \"labels\": {}, \"delta_count\": {delta}, \
                 \"p50\": {:.1}, \"p99\": {:.1}}}",
                json::string(&h.name),
                json::label_object(&h.labels),
                q.p50,
                q.p99
            );
        }
        line.push_str("]}");
        self.prev = snap.clone();
        line
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    lines: Vec<String>,
    stop: bool,
}

/// A background thread ticking a [`Timeline`] over a registry at a
/// fixed interval. Stop it to collect the series (a final tick is
/// always taken, so even a short-lived recorder yields one line).
#[derive(Debug)]
pub struct TimelineRecorder {
    state: Arc<(Mutex<RecorderState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TimelineRecorder {
    /// Spawns the sampling thread over `obs`, one tick per `interval`.
    pub fn spawn(obs: Registry, interval: Duration) -> Self {
        let state = Arc::new((Mutex::new(RecorderState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let mut timeline = Timeline::new();
            let (lock, cv) = &*thread_state;
            let mut guard = lock.lock().expect("timeline state");
            loop {
                let (g, timeout) = cv.wait_timeout(guard, interval).expect("timeline state");
                guard = g;
                let stopping = guard.stop;
                if timeout.timed_out() || stopping {
                    let line = timeline.tick(&obs.snapshot(), obs.now_ns());
                    guard.lines.push(line);
                }
                if stopping {
                    return;
                }
            }
        });
        TimelineRecorder {
            state,
            handle: Some(handle),
        }
    }

    /// Stops the thread (after one final tick) and returns the ndjson
    /// lines, oldest first.
    pub fn stop(mut self) -> Vec<String> {
        self.shutdown();
        std::mem::take(&mut self.state.0.lock().expect("timeline state").lines)
    }

    fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.state;
            lock.lock().expect("timeline state").stop = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TimelineRecorder {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_reports_everything_changes_only_after() {
        let obs = Registry::new();
        obs.counter("steps", &[("bench", "t")]).add(10);
        obs.gauge("depth", &[]).set(3);
        obs.histogram("lat", &[]).record(100);
        let mut tl = Timeline::new();
        let l1 = tl.tick(&obs.snapshot(), 1000);
        let v1 = json::parse(&l1).expect("line 1 parses");
        assert_eq!(v1.get("t_ns").and_then(|t| t.as_u64()), Some(1000));
        assert_eq!(v1.get("counters").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v1.get("gauges").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v1.get("histograms").unwrap().as_arr().unwrap().len(), 1);

        // Nothing changed: the next tick is an empty heartbeat.
        let l2 = tl.tick(&obs.snapshot(), 2000);
        let v2 = json::parse(&l2).expect("line 2 parses");
        assert!(v2.get("counters").unwrap().as_arr().unwrap().is_empty());
        assert!(v2.get("gauges").unwrap().as_arr().unwrap().is_empty());
        assert!(v2.get("histograms").unwrap().as_arr().unwrap().is_empty());

        // A delta shows up as exactly the delta.
        obs.counter("steps", &[("bench", "t")]).add(5);
        let l3 = tl.tick(&obs.snapshot(), 3000);
        let v3 = json::parse(&l3).expect("line 3 parses");
        let counters = v3.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("delta").and_then(|d| d.as_u64()), Some(5));
    }

    #[test]
    fn histogram_entries_carry_quantiles() {
        let obs = Registry::new();
        for _ in 0..50 {
            obs.histogram("lat", &[]).record(1000);
        }
        let mut tl = Timeline::new();
        let v = json::parse(&tl.tick(&obs.snapshot(), 0)).expect("parses");
        let h = &v.get("histograms").unwrap().as_arr().unwrap()[0];
        assert_eq!(h.get("delta_count").and_then(|d| d.as_u64()), Some(50));
        let p50 = h.get("p50").and_then(|p| p.as_f64()).expect("p50");
        assert!((512.0..=1023.0).contains(&p50), "{p50}");
    }

    #[test]
    fn recorder_thread_yields_at_least_one_line() {
        let obs = Registry::new();
        obs.counter("c", &[]).add(1);
        let rec = TimelineRecorder::spawn(obs.clone(), Duration::from_millis(5));
        obs.counter("c", &[]).add(1);
        std::thread::sleep(Duration::from_millis(25));
        let lines = rec.stop();
        assert!(!lines.is_empty());
        for line in &lines {
            json::parse(line).expect("every line is valid json");
        }
        // The series accounts the full counter value across its deltas.
        let total: u64 = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("counters")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .filter_map(|c| c.get("delta").and_then(|d| d.as_u64()))
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total, 2);
    }
}
