//! The `metrics.json` snapshot exporter and its schema descriptor.
//!
//! A [`Snapshot`] is a point-in-time copy of every registered metric,
//! sorted by name and label set so two snapshots of equivalent runs
//! are textually diffable. [`Snapshot::to_json`] renders the stable
//! `metrics.json` document (schema version [`SCHEMA_VERSION`]);
//! [`Snapshot::schema_json`] renders just the *shape* — metric kinds,
//! names and label keys with all values elided — which CI pins with a
//! checked-in snapshot to catch accidental schema drift.

use std::fmt::Write as _;

use crate::json;
use crate::metrics::{bucket_bounds, HISTOGRAM_BUCKETS};

/// Version stamp written into every `metrics.json`. Bump when the
/// document structure changes (and update the checked-in schema
/// snapshot). Version 2 added per-histogram `quantiles` and the
/// timeline line shape.
pub const SCHEMA_VERSION: u32 = 2;

/// Keys of every histogram entry in `metrics.json`, in output order
/// (pinned by the schema snapshot).
pub const HISTOGRAM_FIELDS: [&str; 6] = ["name", "labels", "count", "sum", "buckets", "quantiles"];

/// A counter's snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: u64,
}

/// A gauge's snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: i64,
}

/// One non-empty histogram bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketSample {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// A histogram's snapshot (only non-empty buckets are kept).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets, in value order.
    pub buckets: Vec<BucketSample>,
}

impl HistogramSample {
    pub(crate) fn from_cell(cell: &crate::metrics::HistogramCell) -> Self {
        use std::sync::atomic::Ordering;
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let count = cell.buckets[i].load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let (lo, hi) = bucket_bounds(i);
                Some(BucketSample { lo, hi, count })
            })
            .collect();
        HistogramSample {
            name: cell.id.name.clone(),
            labels: cell.id.labels.clone(),
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of every metric in a registry, canonically
/// sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms (including the `span.*.ns` timing histograms).
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Renders the stable `metrics.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"labels\": {}, \"value\": {}}}{sep}",
                json::string(&c.name),
                json::label_object(&c.labels),
                c.value
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            let sep = if i + 1 == self.gauges.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"labels\": {}, \"value\": {}}}{sep}",
                json::string(&g.name),
                json::label_object(&g.labels),
                g.value
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i + 1 == self.histograms.len() {
                ""
            } else {
                ","
            };
            let mut buckets = String::from("[");
            for (k, b) in h.buckets.iter().enumerate() {
                if k > 0 {
                    buckets.push_str(", ");
                }
                let _ = write!(
                    buckets,
                    "{{\"lo\": {}, \"hi\": {}, \"count\": {}}}",
                    b.lo, b.hi, b.count
                );
            }
            buckets.push(']');
            let q = crate::quantile::QuantileView::from_sample(h).unwrap_or_default();
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"buckets\": {buckets}, \"quantiles\": {{\"p50\": {:.1}, \"p90\": {:.1}, \
                 \"p99\": {:.1}, \"max\": {}}}}}{sep}",
                json::string(&h.name),
                json::label_object(&h.labels),
                h.count,
                h.sum,
                q.p50,
                q.p90,
                q.p99,
                q.max
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the snapshot's *schema*: the sorted, deduplicated set of
    /// (kind, name, label keys) triples with every value elided. Two
    /// runs over the same code emit the same schema even though their
    /// metric values differ, so CI can pin it.
    pub fn schema_json(&self) -> String {
        let mut entries: Vec<(String, String, Vec<String>)> = Vec::new();
        let mut push = |kind: &str, name: &str, labels: &[(String, String)]| {
            let keys: Vec<String> = labels.iter().map(|(k, _)| k.clone()).collect();
            let e = (kind.to_string(), name.to_string(), keys);
            if !entries.contains(&e) {
                entries.push(e);
            }
        };
        for c in &self.counters {
            push("counter", &c.name, &c.labels);
        }
        for g in &self.gauges {
            push("gauge", &g.name, &g.labels);
        }
        for h in &self.histograms {
            push("histogram", &h.name, &h.labels);
        }
        entries.sort();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"metrics\": [");
        for (i, (kind, name, keys)) in entries.iter().enumerate() {
            let sep = if i + 1 == entries.len() { "" } else { "," };
            let keys_json = keys
                .iter()
                .map(|k| json::string(k))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "    {{\"kind\": {}, \"name\": {}, \"label_keys\": [{keys_json}]}}{sep}",
                json::string(kind),
                json::string(name)
            );
        }
        let _ = writeln!(out, "  ],");
        let join = |fields: &[&str]| {
            fields
                .iter()
                .map(|f| json::string(f))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "  \"histogram_fields\": [{}],",
            join(&HISTOGRAM_FIELDS)
        );
        let _ = writeln!(
            out,
            "  \"timeline_fields\": [{}]",
            join(&crate::timeline::TIMELINE_FIELDS)
        );
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("steps", &[("bench", "qsort")]).add(42);
        r.gauge("threads", &[]).set(4);
        r.histogram("lat.ns", &[("stage", "parse")]).record(1000);
        r
    }

    #[test]
    fn snapshot_json_is_stable_and_contains_values() {
        let s = sample_registry().snapshot();
        let j = s.to_json();
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"name\": \"steps\""));
        assert!(j.contains("\"value\": 42"));
        assert!(j.contains("\"bench\": \"qsort\""));
        assert!(j.contains("\"count\": 1"));
        // value 1000 lands in bucket [512, 1023]? no — 1000 < 1024, so
        // [512, 1023]; assert the bucket bounds are present.
        assert!(j.contains("\"lo\": 512, \"hi\": 1023, \"count\": 1"));
        // The single-sample quantiles all sit inside that bucket.
        assert!(j.contains("\"quantiles\": {\"p50\": "), "{j}");
        assert!(j.contains("\"max\": 1023"));
    }

    #[test]
    fn metrics_json_parses_and_schema_lists_field_shapes() {
        let s = sample_registry().snapshot();
        let doc = crate::json::parse(&s.to_json()).expect("metrics.json parses");
        let hists = doc.get("histograms").unwrap().as_arr().unwrap();
        let q = hists[0].get("quantiles").expect("quantiles present");
        assert!(q.get("p99").and_then(|v| v.as_f64()).is_some());
        let schema = crate::json::parse(&s.schema_json()).expect("schema parses");
        let hf = schema.get("histogram_fields").unwrap().as_arr().unwrap();
        assert!(hf.iter().any(|f| f.as_str() == Some("quantiles")));
        let tf = schema.get("timeline_fields").unwrap().as_arr().unwrap();
        assert!(tf.iter().any(|f| f.as_str() == Some("t_ns")));
    }

    #[test]
    fn schema_elides_values_and_is_value_independent() {
        let a = sample_registry();
        let b = Registry::new();
        b.counter("steps", &[("bench", "zebra")]).add(7);
        b.gauge("threads", &[]).set(99);
        b.histogram("lat.ns", &[("stage", "parse")]).record(5);
        let sa = a.snapshot().schema_json();
        let sb = b.snapshot().schema_json();
        assert_eq!(sa, sb, "schema must not depend on label values");
        assert!(sa.contains("\"kind\": \"counter\""));
        assert!(sa.contains("\"label_keys\": [\"bench\"]"));
        assert!(!sa.contains("qsort"));
    }

    #[test]
    fn snapshots_are_sorted_for_diffing() {
        let r = Registry::new();
        r.counter("z.last", &[]).inc();
        r.counter("a.first", &[]).inc();
        r.counter("m.mid", &[("b", "2")]).inc();
        r.counter("m.mid", &[("b", "1")]).inc();
        let s = r.snapshot();
        let names: Vec<_> = s
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.labels.clone()))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
