//! The evaluation-system pipeline (paper Figure 1): Prolog source →
//! BAM → IntCode → sequential emulation, producing the compiled
//! artifacts and statistics every experiment consumes.

use std::error::Error;
use std::fmt;

use symbol_bam::BamProgram;
use symbol_intcode::batch::{self, ArenaPool, BatchOutcome};
use symbol_intcode::decode::{DecodedEmulator, DecodedProgram, ExecProfile};
use symbol_intcode::emu::{Emulator, ExecConfig, ExecStats, Outcome, RunResult};
use symbol_intcode::fuse::{self, FuseConfig, FusionReport};
use symbol_intcode::layout::Layout;
use symbol_intcode::program::IciProgram;
use symbol_intcode::translate::{self, TranslateError};
use symbol_obs::Registry;
use symbol_prolog::{ParseError, PredId, Program};

/// Any error the pipeline can produce.
#[derive(Debug)]
pub enum PipelineError {
    /// Front-end syntax error.
    Parse(ParseError),
    /// BAM compilation error.
    Compile(symbol_bam::CompileError),
    /// ICI translation error.
    Translate(TranslateError),
    /// The program has no `main/0`.
    NoMain,
    /// The emulator hit a machine error.
    Exec(symbol_intcode::emu::ExecError),
    /// The VLIW simulator hit a machine-model violation or fault.
    Sim(symbol_vliw::SimError),
    /// The compactor produced a schedule that failed static
    /// verification. On the serving tier this must surface as an error
    /// value — the legacy `compact` panic is unreachable from here.
    Schedule(symbol_compactor::Violation),
    /// A rebuilt program failed [`IciProgram::try_new`] validation.
    Program(symbol_intcode::ProgramError),
    /// A compiled artifact was truncated, corrupt, or inconsistent.
    Artifact(symbol_intcode::WireError),
    /// The query failed or produced a wrong (self-checked) answer.
    WrongAnswer,
    /// [`Compiled::run_sequential_fused`] was called before a fused
    /// tier was built or attached.
    NoFusedTier,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Compile(e) => write!(f, "compile: {e}"),
            PipelineError::Translate(e) => write!(f, "translate: {e}"),
            PipelineError::NoMain => write!(f, "program defines no main/0"),
            PipelineError::Exec(e) => write!(f, "execution: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
            PipelineError::Schedule(v) => write!(f, "schedule verification: {v}"),
            PipelineError::Program(e) => write!(f, "program validation: {e}"),
            PipelineError::Artifact(e) => write!(f, "artifact: {e}"),
            PipelineError::WrongAnswer => {
                write!(f, "query failed its self-check (wrong answer)")
            }
            PipelineError::NoFusedTier => {
                write!(f, "fused tier not built (profile the program first)")
            }
        }
    }
}

impl Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<symbol_bam::CompileError> for PipelineError {
    fn from(e: symbol_bam::CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<TranslateError> for PipelineError {
    fn from(e: TranslateError) -> Self {
        PipelineError::Translate(e)
    }
}

impl From<symbol_intcode::emu::ExecError> for PipelineError {
    fn from(e: symbol_intcode::emu::ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

impl From<symbol_vliw::SimError> for PipelineError {
    fn from(e: symbol_vliw::SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<symbol_compactor::Violation> for PipelineError {
    fn from(v: symbol_compactor::Violation) -> Self {
        PipelineError::Schedule(v)
    }
}

impl From<symbol_intcode::ProgramError> for PipelineError {
    fn from(e: symbol_intcode::ProgramError) -> Self {
        PipelineError::Program(e)
    }
}

impl From<symbol_intcode::WireError> for PipelineError {
    fn from(e: symbol_intcode::WireError) -> Self {
        PipelineError::Artifact(e)
    }
}

/// The front-end representations of a compilation: only produced when
/// the pipeline actually ran from source. A [`Compiled`] restored from
/// a serialized artifact has none — the whole point of the artifact
/// path is skipping the front end.
#[derive(Debug)]
pub struct FrontEnd {
    /// The normalized source program.
    pub program: Program,
    /// BAM code.
    pub bam: BamProgram,
}

/// The profile-guided second execution tier: the fused program, what
/// the fusion pass did, and the hash of the profile it specialized
/// against (the invalidation token of the serve-layer cache key).
#[derive(Debug)]
pub struct FusedTier {
    /// The re-decoded program with fused superinstructions installed.
    pub program: DecodedProgram,
    /// Static and dynamic accounting of the fusion pass.
    pub report: FusionReport,
    /// `fuse::profile_hash` of the profile this tier was built from.
    pub profile_hash: u64,
}

/// A fully compiled benchmark: the executable representations plus —
/// when compiled from source — the front-end forms kept for
/// inspection.
#[derive(Debug)]
pub struct Compiled {
    /// Front-end representations (`None` on the artifact cold path,
    /// see [`Compiled::from_artifact`]).
    pub front: Option<FrontEnd>,
    /// Executable IntCode.
    pub ici: IciProgram,
    /// The IntCode pre-decoded into the flat micro-op form — the
    /// default execution engine of [`Compiled::run_sequential`].
    pub decoded: DecodedProgram,
    /// Memory layout the code was generated for.
    pub layout: Layout,
    /// The fused second tier, once a profiling run has built (or the
    /// artifact cache has attached) it. `None` until then — cold runs
    /// execute `decoded`, warm runs execute this.
    pub fused: Option<FusedTier>,
}

impl Compiled {
    /// Compiles Prolog source down to IntCode with the default layout.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for syntax errors, unsupported
    /// goals, undefined predicates or a missing `main/0`.
    pub fn from_source(src: &str) -> Result<Self, PipelineError> {
        Self::from_source_with_layout(src, Layout::default())
    }

    /// Compiles with an explicit memory layout.
    ///
    /// # Errors
    ///
    /// See [`Compiled::from_source`].
    pub fn from_source_with_layout(src: &str, layout: Layout) -> Result<Self, PipelineError> {
        Self::from_source_obs(src, layout, &Registry::disabled(), "")
    }

    /// [`Compiled::from_source_with_layout`] with every compilation
    /// stage observed through `obs`: RAII spans (`parse`, `compile`,
    /// `translate`, `decode`) labelled with `bench`, and the front-end
    /// crates' diagnostics routed to the registry's event sink. With
    /// [`Registry::disabled`] this is exactly the plain path.
    ///
    /// # Errors
    ///
    /// See [`Compiled::from_source`].
    pub fn from_source_obs(
        src: &str,
        layout: Layout,
        obs: &Registry,
        bench: &str,
    ) -> Result<Self, PipelineError> {
        let labels: &[(&str, &str)] = &[("bench", bench)];
        let events = obs.events();
        let program = {
            let _span = obs.span("parse", labels);
            symbol_prolog::parse_program_with_events(src, &events)?
        };
        let bam = {
            let _span = obs.span("compile", labels);
            symbol_bam::compile_with_events(&program, &events)?
        };
        let main_atom = program
            .symbols()
            .lookup("main")
            .ok_or(PipelineError::NoMain)?;
        let main = PredId::new(main_atom, 0);
        if program.predicate(main).is_none() {
            return Err(PipelineError::NoMain);
        }
        let ici = {
            let _span = obs.span("translate", labels);
            translate::translate_with_events(&bam, main, &layout, &events)?
        };
        let decoded = {
            let _span = obs.span("decode", labels);
            DecodedProgram::new(&ici)
        };
        Ok(Compiled {
            front: Some(FrontEnd { program, bam }),
            ici,
            decoded,
            layout,
            fused: None,
        })
    }

    /// Assembles a [`Compiled`] from deserialized artifact parts,
    /// skipping the whole front end (parse → compile → translate →
    /// decode). This is the cold-start path of the `symbol-serve`
    /// artifact cache: the caller deserializes the IntCode and its
    /// pre-decoded form from disk, and this constructor only
    /// cross-checks that the two are consistent.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Artifact`] when the decoded program is not
    /// parallel to the IntCode (a corrupt or mismatched artifact).
    pub fn from_artifact(
        ici: IciProgram,
        decoded: DecodedProgram,
        layout: Layout,
    ) -> Result<Self, PipelineError> {
        if decoded.len() != ici.len() {
            return Err(PipelineError::Artifact(
                symbol_intcode::WireError::Corrupt {
                    what: "decoded/intcode consistency",
                },
            ));
        }
        Ok(Compiled {
            front: None,
            ici,
            decoded,
            layout,
            fused: None,
        })
    }

    /// Runs the sequential emulation on the pre-decoded micro-op
    /// engine (the default path), requiring the query's self-check to
    /// succeed.
    ///
    /// # Errors
    ///
    /// [`PipelineError::WrongAnswer`] if the query fails;
    /// [`PipelineError::Exec`] on machine errors or step-limit
    /// exhaustion.
    pub fn run_sequential(&self) -> Result<RunResult, PipelineError> {
        let result =
            DecodedEmulator::new(&self.decoded, &self.layout).run(&ExecConfig::default())?;
        if result.outcome != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok(result)
    }

    /// [`Compiled::run_sequential`] wrapped in an `emulate` span and
    /// step/op accounting on `obs`. The run itself is the identical
    /// unprofiled engine — observability changes nothing about the
    /// result.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_sequential_obs(
        &self,
        obs: &Registry,
        bench: &str,
    ) -> Result<RunResult, PipelineError> {
        let labels: &[(&str, &str)] = &[("bench", bench)];
        let result = {
            let _span = obs.span("emulate", labels);
            self.run_sequential()?
        };
        obs.counter("emulator.steps", labels).add(result.steps);
        Ok(result)
    }

    /// [`Compiled::run_sequential`] on the legacy op-at-a-time
    /// interpreter — kept for differential testing against the decoded
    /// engine.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_sequential_legacy(&self) -> Result<RunResult, PipelineError> {
        let result = Emulator::new(&self.ici, &self.layout).run(&ExecConfig::default())?;
        if result.outcome != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok(result)
    }

    /// The cold profiling run of the tiering loop: executes the
    /// decoded program under the profiled monomorphization and returns
    /// the execution statistics, branch-predictor profile, and step
    /// count. Deterministic — two profiling runs of the same program
    /// produce identical profiles (and so an identical
    /// `fuse::profile_hash`), which is what lets the serve layer
    /// recover the fused artifact's cache key on a warm path.
    ///
    /// # Errors
    ///
    /// [`PipelineError::WrongAnswer`] if the query fails;
    /// [`PipelineError::Exec`] on machine errors.
    pub fn profile(&self) -> Result<(ExecStats, ExecProfile, u64), PipelineError> {
        let (res, stats, steps, profile) = DecodedEmulator::new(&self.decoded, &self.layout)
            .run_with_profile(&ExecConfig::default());
        if res? != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok((stats, profile, steps))
    }

    /// Builds and installs the fused tier from an already-collected
    /// profile (the serve layer's path: it profiles once, derives the
    /// cache key, and only then decides whether to fuse or attach).
    pub fn attach_fused_from_profile(
        &mut self,
        stats: &ExecStats,
        profile: &ExecProfile,
    ) -> &FusedTier {
        let (program, report) = fuse::fuse(&self.decoded, stats, profile, &FuseConfig::default());
        let profile_hash = fuse::profile_hash(stats, profile);
        self.fused.insert(FusedTier {
            program,
            report,
            profile_hash,
        })
    }

    /// The full cold half of the tiering loop: one profiling run, then
    /// fusion. After this, [`Compiled::run_sequential_fused`] (and the
    /// fast path [`Compiled::run_sequential_fast`]) execute the
    /// specialized program.
    ///
    /// # Errors
    ///
    /// See [`Compiled::profile`].
    pub fn build_fused_tier(&mut self) -> Result<&FusedTier, PipelineError> {
        let (stats, profile, _steps) = self.profile()?;
        Ok(self.attach_fused_from_profile(&stats, &profile))
    }

    /// [`Compiled::build_fused_tier`] with the profiling run and the
    /// fusion pass observed through `obs`: `profile` and `fuse` spans
    /// labelled with `bench`, plus `fuse.pairs`, `fuse.ops_fused`,
    /// `fuse.dispatches_saved` counters and a per-mille
    /// `fuse.coverage_permille` gauge.
    ///
    /// # Errors
    ///
    /// See [`Compiled::profile`].
    pub fn build_fused_tier_obs(
        &mut self,
        obs: &Registry,
        bench: &str,
    ) -> Result<&FusedTier, PipelineError> {
        let labels: &[(&str, &str)] = &[("bench", bench)];
        let (stats, profile, _steps) = {
            let _span = obs.span("profile", labels);
            self.profile()?
        };
        let tier = {
            let _span = obs.span("fuse", labels);
            self.attach_fused_from_profile(&stats, &profile)
        };
        obs.counter("fuse.pairs", labels).add(tier.report.pairs);
        obs.counter("fuse.ops_fused", labels)
            .add(tier.report.ops_fused);
        obs.counter("fuse.dispatches_saved", labels)
            .add(tier.report.dispatches_saved);
        obs.gauge("fuse.coverage_permille", labels)
            .set((tier.report.coverage() * 1000.0) as i64);
        Ok(tier)
    }

    /// Installs a fused tier restored from a serialized artifact,
    /// cross-checking that it is parallel to this program's IntCode
    /// (same invariant [`Compiled::from_artifact`] enforces for the
    /// unfused decoded form).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Artifact`] on a length mismatch — a fused
    /// artifact for some other program.
    pub fn attach_fused_tier(&mut self, tier: FusedTier) -> Result<(), PipelineError> {
        if tier.program.len() != self.ici.len() {
            return Err(PipelineError::Artifact(
                symbol_intcode::WireError::Corrupt {
                    what: "fused/intcode consistency",
                },
            ));
        }
        self.fused = Some(tier);
        Ok(())
    }

    /// Runs the sequential emulation on the fused second-tier program.
    /// Bit-identical to [`Compiled::run_sequential`] — same outcome,
    /// step count and `ExecStats` — just fewer dispatches.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoFusedTier`] before
    /// [`Compiled::build_fused_tier`] /
    /// [`Compiled::attach_fused_tier`]; otherwise see
    /// [`Compiled::run_sequential`].
    pub fn run_sequential_fused(&self) -> Result<RunResult, PipelineError> {
        let tier = self.fused.as_ref().ok_or(PipelineError::NoFusedTier)?;
        let result =
            DecodedEmulator::new(&tier.program, &self.layout).run(&ExecConfig::default())?;
        if result.outcome != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok(result)
    }

    /// The tiered entry point: the fused program when a tier is
    /// installed (warm), the plain decoded program otherwise (cold).
    /// Both produce bit-identical results, so callers can upgrade a
    /// running image without behavioral change.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_sequential_fast(&self) -> Result<RunResult, PipelineError> {
        if self.fused.is_some() {
            self.run_sequential_fused()
        } else {
            self.run_sequential()
        }
    }

    /// The program the serving tier executes: the fused second tier
    /// when one is installed, the plain decoded program otherwise.
    /// Both are bit-identical in behavior.
    pub fn serving_program(&self) -> &DecodedProgram {
        self.fused
            .as_ref()
            .map_or(&self.decoded, |tier| &tier.program)
    }

    /// Runs a batch of independent queries back-to-back against the
    /// serving program (fused when installed), reusing pooled engine
    /// state — no per-query register/heap allocation once the pool is
    /// warm. Answers come back in query index order and each is
    /// bit-identical (outcome, step count, errors) to a standalone
    /// [`Compiled::run_sequential_fast`] of the same query.
    pub fn run_batch(&self, queries: &[ExecConfig], pool: &mut ArenaPool) -> Vec<BatchOutcome> {
        batch::run_batch(self.serving_program(), &self.layout, queries, pool)
    }

    /// [`Compiled::run_batch`] fanned out over `workers` scoped
    /// threads (contiguous chunks, per-worker arenas). Index-ordered
    /// and bit-identical to the sequential batch for every worker
    /// count.
    pub fn run_batch_parallel(&self, queries: &[ExecConfig], workers: usize) -> Vec<BatchOutcome> {
        batch::run_batch_parallel(self.serving_program(), &self.layout, queries, workers)
    }

    /// One serving-tier *batch* request: `n` default-config queries
    /// run back-to-back on pooled state under a per-request trace
    /// span, each answer self-checked exactly like
    /// [`Compiled::run_query_obs`]. Returns per-query step counts in
    /// query index order.
    ///
    /// # Errors
    ///
    /// Per query: [`PipelineError::WrongAnswer`] on a failed
    /// self-check, [`PipelineError::Exec`] on machine errors.
    pub fn run_query_batch_obs(
        &self,
        obs: &Registry,
        req_id: u64,
        n: usize,
        pool: &mut ArenaPool,
    ) -> Vec<Result<u64, PipelineError>> {
        let req = req_id.to_string();
        let batch_n = n.to_string();
        let tier = if self.fused.is_some() {
            "fused"
        } else {
            "decoded"
        };
        let _span = obs.event_span(
            "serve.query_batch",
            &[("req", &req), ("n", &batch_n), ("tier", tier)],
        );
        let queries = vec![ExecConfig::default(); n];
        self.run_batch(&queries, pool)
            .into_iter()
            .map(|out| match out.result {
                Ok(Outcome::Success) => Ok(out.steps),
                Ok(_) => Err(PipelineError::WrongAnswer),
                Err(e) => Err(PipelineError::Exec(e)),
            })
            .collect()
    }

    /// One serving-tier query: [`Compiled::run_sequential_fast`] under
    /// a per-request trace span carrying the request id and the tier
    /// that answered. The span is a [`Registry::event_span`] — trace
    /// event only, no histogram — because request ids are unbounded
    /// and would otherwise mint one histogram cell per request.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_query_obs(&self, obs: &Registry, req_id: u64) -> Result<RunResult, PipelineError> {
        let req = req_id.to_string();
        let tier = if self.fused.is_some() {
            "fused"
        } else {
            "decoded"
        };
        let _span = obs.event_span("serve.query", &[("req", &req), ("tier", tier)]);
        self.run_sequential_fast()
    }
}

/// A compiled benchmark together with its sequential profiling run.
///
/// The sequential emulation is the single most expensive shared input
/// of the evaluation system: every compaction mode and machine
/// configuration consumes the same [`RunResult`] (its `ExecStats`
/// drive trace picking and branch statistics). Building it once here
/// and sharing it immutably lets all simulation workers run
/// concurrently without recomputing the profile per configuration.
#[derive(Debug)]
pub struct CompiledCache<'a> {
    /// The compiled artifacts, borrowed immutably for the cache's
    /// lifetime so workers on other threads can share them.
    pub compiled: &'a Compiled,
    /// The sequential profiling run (self-check already enforced).
    pub run: RunResult,
}

impl<'a> CompiledCache<'a> {
    /// Performs the sequential profiling run once for `compiled`.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn new(compiled: &'a Compiled) -> Result<Self, PipelineError> {
        let run = compiled.run_sequential()?;
        Ok(CompiledCache { compiled, run })
    }

    /// [`CompiledCache::new`] with the profiling run observed through
    /// `obs` (see [`Compiled::run_sequential_obs`]).
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn new_obs(
        compiled: &'a Compiled,
        obs: &Registry,
        bench: &str,
    ) -> Result<Self, PipelineError> {
        let run = compiled.run_sequential_obs(obs, bench)?;
        Ok(CompiledCache { compiled, run })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_profile_matches_a_direct_run() -> Result<(), PipelineError> {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.")?;
        let cache = CompiledCache::new(&c)?;
        let direct = c.run_sequential()?;
        assert_eq!(cache.run.steps, direct.steps);
        assert_eq!(cache.run.stats.expect, direct.stats.expect);
        assert_eq!(cache.run.stats.taken, direct.stats.taken);
        Ok(())
    }

    #[test]
    fn artifact_round_trip_reconstructs_a_runnable_compiled() -> Result<(), PipelineError> {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.")?;
        let ici = IciProgram::from_wire_bytes(&c.ici.to_wire_bytes())?;
        let decoded = DecodedProgram::from_wire_bytes(&c.decoded.to_wire_bytes())?;
        let restored = Compiled::from_artifact(ici, decoded, c.layout)?;
        assert!(restored.front.is_none(), "artifact path has no front end");
        let a = c.run_sequential()?;
        let b = restored.run_sequential()?;
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.expect, b.stats.expect);
        assert_eq!(a.stats.taken, b.stats.taken);
        Ok(())
    }

    #[test]
    fn mismatched_artifact_parts_are_rejected() {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.").expect("compiles");
        let other = Compiled::from_source("main :- 2 = 2.").expect("compiles");
        let err = Compiled::from_artifact(other.ici, c.decoded.clone(), c.layout).unwrap_err();
        assert!(matches!(err, PipelineError::Artifact(_)), "{err}");
    }

    #[test]
    fn decoded_default_engine_matches_legacy() {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.").unwrap();
        let d = c.run_sequential().unwrap();
        let l = c.run_sequential_legacy().unwrap();
        assert_eq!(d.outcome, l.outcome);
        assert_eq!(d.steps, l.steps);
        assert_eq!(d.stats.expect, l.stats.expect);
        assert_eq!(d.stats.taken, l.stats.taken);
    }

    #[test]
    fn fused_tier_is_bit_identical_to_decoded_and_legacy() {
        let src = "main :- count(50).
                   count(0).
                   count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).unwrap();
        let d = c.run_sequential().unwrap();
        let l = c.run_sequential_legacy().unwrap();
        let tier = c.build_fused_tier().unwrap();
        assert!(tier.report.pairs > 0, "fusion found hot pairs");
        assert!(tier.report.coverage() > 0.0);
        let f = c.run_sequential_fused().unwrap();
        assert_eq!(f.outcome, d.outcome);
        assert_eq!(f.steps, d.steps);
        assert_eq!(f.steps, l.steps);
        assert_eq!(f.stats.expect, d.stats.expect);
        assert_eq!(f.stats.taken, d.stats.taken);
    }

    #[test]
    fn fast_path_picks_the_installed_tier() {
        let mut c = Compiled::from_source("main :- X is 2 + 3, X = 5.").unwrap();
        let cold = c.run_sequential_fast().unwrap();
        assert!(
            matches!(
                c.run_sequential_fused().unwrap_err(),
                PipelineError::NoFusedTier
            ),
            "no tier before profiling"
        );
        c.build_fused_tier().unwrap();
        let warm = c.run_sequential_fast().unwrap();
        assert_eq!(cold.steps, warm.steps);
        assert_eq!(cold.stats.expect, warm.stats.expect);
    }

    #[test]
    fn profile_and_profile_hash_are_deterministic() {
        let c = Compiled::from_source("main :- X is 6 * 7, X = 42.").unwrap();
        let (s1, p1, n1) = c.profile().unwrap();
        let (s2, p2, n2) = c.profile().unwrap();
        assert_eq!(n1, n2);
        assert_eq!(s1.expect, s2.expect);
        assert_eq!(p1.mispredict, p2.mispredict);
        assert_eq!(fuse::profile_hash(&s1, &p1), fuse::profile_hash(&s2, &p2));
    }

    #[test]
    fn mismatched_fused_tier_is_rejected() {
        let mut other = Compiled::from_source("main :- 2 = 2.").unwrap();
        other.build_fused_tier().unwrap();
        let tier = other.fused.take().unwrap();
        let mut c = Compiled::from_source("main :- X is 5 * 5, X = 25.").unwrap();
        let err = c.attach_fused_tier(tier).unwrap_err();
        assert!(matches!(err, PipelineError::Artifact(_)), "{err}");
        assert!(c.fused.is_none());
    }

    #[test]
    fn fused_tier_obs_counters_account_the_pass() {
        let obs = Registry::new();
        let mut c = Compiled::from_source("main :- X is 5 * 5, X = 25.").unwrap();
        let report = c.build_fused_tier_obs(&obs, "t").unwrap().report.clone();
        let labels: &[(&str, &str)] = &[("bench", "t")];
        assert_eq!(obs.counter("fuse.pairs", labels).get(), report.pairs);
        assert_eq!(
            obs.counter("fuse.ops_fused", labels).get(),
            report.ops_fused
        );
        assert_eq!(
            obs.counter("fuse.dispatches_saved", labels).get(),
            report.dispatches_saved
        );
    }

    #[test]
    fn batched_queries_match_sequential_on_both_tiers() {
        let src = "main :- count(40). count(0). count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).unwrap();
        let seq = c.run_sequential().unwrap();
        let queries = vec![ExecConfig::default(); 5];
        let mut pool = ArenaPool::new();
        for tiered in [false, true] {
            if tiered {
                c.build_fused_tier().unwrap();
            }
            let out = c.run_batch(&queries, &mut pool);
            assert_eq!(out.len(), 5);
            for o in &out {
                assert_eq!(o.result, Ok(Outcome::Success));
                assert_eq!(o.steps, seq.steps, "tiered={tiered}");
            }
            for workers in [1, 2, 4] {
                assert_eq!(c.run_batch_parallel(&queries, workers), out);
            }
        }
        let obs = Registry::new();
        let answers = c.run_query_batch_obs(&obs, 7, 3, &mut pool);
        assert_eq!(answers.len(), 3);
        for a in answers {
            assert_eq!(a.unwrap(), seq.steps);
        }
        // A step-limited query mid-batch errs alone, in place.
        let mixed = [
            ExecConfig::default(),
            ExecConfig { max_steps: 3 },
            ExecConfig::default(),
        ];
        let out = c.run_batch(&mixed, &mut pool);
        assert_eq!(out[0].result, Ok(Outcome::Success));
        assert!(out[1].result.is_err());
        assert_eq!(out[1].steps, 3);
        assert_eq!(out[2].result, Ok(Outcome::Success));
        assert_eq!(out[2].steps, seq.steps);
    }

    #[test]
    fn compiles_and_runs_trivial_program() {
        let c = Compiled::from_source("main :- X is 1 + 1, X = 2.").unwrap();
        let r = c.run_sequential().unwrap();
        assert!(r.steps > 0);
    }

    #[test]
    fn missing_main_is_reported() {
        let e = Compiled::from_source("foo.").unwrap_err();
        assert!(matches!(e, PipelineError::NoMain));
    }

    #[test]
    fn wrong_answer_is_reported() {
        let c = Compiled::from_source("main :- 1 = 2.").unwrap();
        assert!(matches!(
            c.run_sequential().unwrap_err(),
            PipelineError::WrongAnswer
        ));
    }
}
