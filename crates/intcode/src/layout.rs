//! Data memory layout and fixed register assignments.
//!
//! The BAM execution model separates the data space into stack areas
//! (paper §4.1): heap, environment stack, choice-point stack, trail and
//! push-down list. We place them in one flat word-addressed memory with
//! the heap lowest, so the classic "bind the higher address to the
//! lower" rule keeps the heap free of pointers into the stacks.

use crate::op::R;

/// Fixed (architectural) registers. Everything at or above
/// [`reg::FIRST_TEMP`] is renamed temporary space.
pub mod reg {
    use super::R;

    /// Heap top.
    pub const H: R = R(0);
    /// Heap backtrack point (heap top at newest choice point).
    pub const HB: R = R(1);
    /// Current environment frame.
    pub const E: R = R(2);
    /// Environment stack top.
    pub const ETOP: R = R(3);
    /// Protected environment boundary (ETOP at newest choice point).
    pub const EB: R = R(4);
    /// Newest choice point frame.
    pub const B: R = R(5);
    /// Trail top.
    pub const TR: R = R(6);
    /// Continuation (return code word).
    pub const CP: R = R(7);
    /// Cut barrier (B at predicate entry).
    pub const B0: R = R(8);
    /// Runtime-routine return address.
    pub const RR: R = R(9);
    /// Runtime-routine argument 1.
    pub const U1: R = R(10);
    /// Runtime-routine argument 2.
    pub const U2: R = R(11);
    /// Runtime-routine boolean result.
    pub const FLAG: R = R(12);
    /// Push-down list top (unification work stack).
    pub const PDL: R = R(13);

    /// Base of the argument registers `A0..A15`.
    pub const ARG_BASE: u32 = 16;
    /// Number of argument registers.
    pub const NUM_ARGS: u32 = 16;
    /// First free id for renamed temporaries.
    pub const FIRST_TEMP: u32 = ARG_BASE + NUM_ARGS;

    /// The argument register `A_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_ARGS`.
    pub fn arg(i: usize) -> R {
        assert!(
            (i as u32) < NUM_ARGS,
            "predicate arity {i} exceeds the {NUM_ARGS} argument registers"
        );
        R(ARG_BASE + i as u32)
    }
}

/// Sizes and base addresses of the data areas.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Layout {
    /// Heap size in words (heap base is address 0).
    pub heap_size: usize,
    /// Environment stack size in words.
    pub env_size: usize,
    /// Choice-point stack size in words.
    pub cp_size: usize,
    /// Trail size in words.
    pub trail_size: usize,
    /// Push-down list size in words.
    pub pdl_size: usize,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            heap_size: 1 << 21,
            env_size: 1 << 19,
            cp_size: 1 << 19,
            trail_size: 1 << 19,
            pdl_size: 1 << 14,
        }
    }
}

impl Layout {
    /// Base of the heap (always 0).
    pub fn heap_base(&self) -> i64 {
        0
    }

    /// Base of the environment stack.
    pub fn env_base(&self) -> i64 {
        self.heap_size as i64
    }

    /// Base of the choice-point stack.
    pub fn cp_base(&self) -> i64 {
        (self.heap_size + self.env_size) as i64
    }

    /// Base of the trail.
    pub fn trail_base(&self) -> i64 {
        (self.heap_size + self.env_size + self.cp_size) as i64
    }

    /// Base of the push-down list.
    pub fn pdl_base(&self) -> i64 {
        (self.heap_size + self.env_size + self.cp_size + self.trail_size) as i64
    }

    /// Total memory size in words.
    pub fn total(&self) -> usize {
        self.heap_size + self.env_size + self.cp_size + self.trail_size + self.pdl_size
    }
}

/// Choice-point frame offsets (negative, from the frame pointer `B`).
///
/// A frame of arity `n` spans `[B - (FIXED + n), B)`; argument `i`
/// lives at `B - (ARGS_START + i)`.
pub mod cp_frame {
    /// `B - SAVED_H`: heap top at creation.
    pub const SAVED_H: i32 = 1;
    /// `B - SAVED_TR`: trail top at creation.
    pub const SAVED_TR: i32 = 2;
    /// `B - RETRY`: code word of the next alternative.
    pub const RETRY: i32 = 3;
    /// `B - PREV_B`: previous choice point.
    pub const PREV_B: i32 = 4;
    /// `B - SAVED_E`: environment frame at creation.
    pub const SAVED_E: i32 = 5;
    /// `B - SAVED_ETOP`: environment top at creation.
    pub const SAVED_ETOP: i32 = 6;
    /// `B - SAVED_CP`: continuation at creation.
    pub const SAVED_CP: i32 = 7;
    /// `B - SAVED_B0`: cut barrier at creation.
    pub const SAVED_B0: i32 = 8;
    /// `B - ARITY`: saved argument count.
    pub const ARITY: i32 = 9;
    /// `B - SAVED_EB`: protected environment boundary at creation.
    ///
    /// This is `max(EB, ETOP)` at push time, NOT plain `ETOP`: with
    /// split environment/choice-point stacks the protected boundary
    /// must be monotone over the choice-point stack, because a clause
    /// that deallocates its frame before a tail call can push a newer
    /// choice point with a *lower* ETOP than an older choice point's —
    /// and the older one still needs the frames below its own
    /// boundary.
    pub const SAVED_EB: i32 = 10;
    /// First argument slot: `B - (ARGS_START + i)` for `A_i`.
    pub const ARGS_START: i32 = 11;
    /// Fixed words per frame (excluding arguments).
    pub const FIXED: i32 = 11;
}

/// Environment frame offsets (positive, from `E`).
pub mod env_frame {
    /// `E + PREV_E`: caller's environment frame.
    pub const PREV_E: i32 = 0;
    /// `E + SAVED_CP`: saved continuation.
    pub const SAVED_CP: i32 = 1;
    /// `E + SLOTS + k`: permanent slot `Y_k`.
    pub const SLOTS: i32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = Layout::default();
        assert_eq!(l.heap_base(), 0);
        assert!(l.heap_base() < l.env_base());
        assert!(l.env_base() < l.cp_base());
        assert!(l.cp_base() < l.trail_base());
        assert!(l.trail_base() < l.pdl_base());
        assert_eq!(l.total() as i64, l.pdl_base() + l.pdl_size as i64);
    }

    #[test]
    fn arg_registers_bounded() {
        assert_eq!(reg::arg(0), R(reg::ARG_BASE));
        assert_eq!(reg::arg(3), R(reg::ARG_BASE + 3));
    }

    #[test]
    #[should_panic(expected = "argument registers")]
    fn arg_register_overflow_panics() {
        reg::arg(16);
    }
}
