//! Clause variable classification: permanent vs. temporary.
//!
//! A variable is *permanent* (environment-allocated, `Y` slot) when it
//! occurs in more than one chunk, where a chunk is the head plus the
//! goals up to and including the first user call, and thereafter each
//! run of goals up to and including the next user call. All other
//! variables are *temporaries* (`X` registers). This is the classic
//! WAM/BAM rule: only values that must survive a call need a memory
//! home.

use std::collections::{HashMap, HashSet};
use symbol_prolog::{Clause, Term};

use crate::instr::Slot;

/// Result of analyzing one clause.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Slot assigned to each clause variable index.
    slots: HashMap<usize, Slot>,
    /// Number of permanent slots (environment size before any cut slot).
    pub num_perms: usize,
    /// Goal indices (into `clause.body`) that are user calls.
    pub call_positions: Vec<usize>,
    /// Whether a cut occurs after at least one user call (a saved cut
    /// barrier slot is then required).
    pub cut_after_call: bool,
    /// Whether the clause contains any cut.
    pub has_cut: bool,
    /// Length of the clause body (cached for `needs_env`).
    body_len: usize,
}

impl VarInfo {
    /// The slot assigned to clause variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of the analyzed clause.
    pub fn slot(&self, v: usize) -> Slot {
        self.slots[&v]
    }

    /// Whether variable `v` lives in the environment.
    pub fn is_perm(&self, v: usize) -> bool {
        matches!(self.slots.get(&v), Some(Slot::Perm(_)))
    }

    /// Extra environment slot index reserved for the cut barrier, if
    /// one is needed.
    pub fn cut_slot(&self) -> Option<usize> {
        self.cut_after_call.then_some(self.num_perms)
    }

    /// Environment size in slots: permanents plus the cut barrier.
    pub fn env_size(&self) -> usize {
        self.num_perms + usize::from(self.cut_after_call)
    }

    /// Whether the clause needs an environment frame at all.
    pub fn needs_env(&self) -> bool {
        if self.env_size() > 0 {
            return true;
        }
        // A call in non-tail position requires saving the continuation.
        match self.call_positions.as_slice() {
            [] => false,
            [only] => *only + 1 != self.body_len,
            _ => true,
        }
    }
}

/// Decides whether a goal is handled inline (builtin) rather than via a
/// call. `is_user_call` is the complement used for chunk splitting.
pub fn is_builtin(goal: &Term, symbols: &symbol_prolog::SymbolTable) -> bool {
    let (name, arity) = match goal.functor() {
        Some(fa) => fa,
        None => return false,
    };
    let n = symbols.name(name);
    matches!(
        (n, arity),
        ("true" | "fail" | "!" | "halt", 0)
            | ("var" | "nonvar" | "atom" | "integer" | "atomic", 1)
            | (
                "=" | "is" | "<" | ">" | "=<" | ">=" | "=:=" | "=\\=" | "==" | "\\==",
                2
            )
    )
}

/// Analyzes `clause`, assigning a [`Slot`] to every variable.
///
/// `temp_base` is the first free temporary index (the caller reserves
/// lower indices, e.g. for indexing scratch registers); temporaries for
/// the clause's own variables are numbered from there, and the compiler
/// allocates further scratch temporaries above them.
pub fn analyze(clause: &Clause, symbols: &symbol_prolog::SymbolTable, temp_base: usize) -> VarInfo {
    // Build chunks: chunk 0 = head + goals up to first call, etc.
    let mut chunk_of_goal = Vec::with_capacity(clause.body.len());
    let mut call_positions = Vec::new();
    let mut chunk = 0usize;
    for (i, g) in clause.body.iter().enumerate() {
        chunk_of_goal.push(chunk);
        if !is_builtin(g, symbols) {
            call_positions.push(i);
            chunk += 1;
        }
    }

    // Record, per variable, the set of chunks it occurs in.
    let mut occurs: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut head_vars = Vec::new();
    clause.head.collect_vars(&mut head_vars);
    for v in head_vars {
        occurs.entry(v).or_default().insert(0);
    }
    for (i, g) in clause.body.iter().enumerate() {
        let mut vs = Vec::new();
        g.collect_vars(&mut vs);
        for v in vs {
            occurs.entry(v).or_default().insert(chunk_of_goal[i]);
        }
    }

    // Permanent = occurs in >= 2 chunks. Assign Y slots in variable
    // order for determinism, X temps from temp_base.
    let mut slots = HashMap::new();
    let mut num_perms = 0;
    let mut num_temps = 0;
    let mut var_ids: Vec<usize> = occurs.keys().copied().collect();
    var_ids.sort_unstable();
    for v in var_ids {
        if occurs[&v].len() >= 2 {
            slots.insert(v, Slot::Perm(num_perms));
            num_perms += 1;
        } else {
            slots.insert(v, Slot::Temp(temp_base + num_temps));
            num_temps += 1;
        }
    }

    // Cut analysis.
    let cut_atom = symbol_prolog::symbols::wk::CUT;
    let mut has_cut = false;
    let mut cut_after_call = false;
    let mut seen_call = false;
    for g in &clause.body {
        match g {
            Term::Atom(a) if *a == cut_atom => {
                has_cut = true;
                if seen_call {
                    cut_after_call = true;
                }
            }
            g if !is_builtin(g, symbols) => seen_call = true,
            _ => {}
        }
    }

    VarInfo {
        slots,
        num_perms,
        call_positions,
        cut_after_call,
        has_cut,
        body_len: clause.body.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_prolog::parse_program;

    fn analyze_first(src: &str, pred: &str, arity: usize) -> (VarInfo, symbol_prolog::Program) {
        let p = parse_program(src).unwrap();
        let clause = p.predicate_named(pred, arity).unwrap().clauses[0].clone();
        let info = analyze(&clause, p.symbols(), 8);
        (info, p)
    }

    #[test]
    fn single_chunk_vars_are_temps() {
        let (info, _) = analyze_first("p(X, Y) :- X = Y.", "p", 2);
        assert!(!info.is_perm(0));
        assert!(!info.is_perm(1));
        assert_eq!(info.num_perms, 0);
        assert!(!info.needs_env());
    }

    #[test]
    fn var_crossing_a_call_is_perm() {
        let (info, _) = analyze_first("p(X, Y) :- q(X), r(Y).", "p", 2);
        // X: head chunk only (chunk 0 incl. first call q). Y: chunks 0 and 1.
        assert!(!info.is_perm(0));
        assert!(info.is_perm(1));
        assert_eq!(info.num_perms, 1);
        assert!(info.needs_env());
    }

    #[test]
    fn tail_call_only_needs_no_env() {
        let (info, _) = analyze_first("p(X) :- q(X).", "p", 1);
        assert!(!info.needs_env());
        assert_eq!(info.call_positions, vec![0]);
    }

    #[test]
    fn builtin_after_call_forces_env() {
        let (info, _) = analyze_first("p(X, Y) :- q(X), Y = X.", "p", 2);
        assert!(info.needs_env());
    }

    #[test]
    fn neck_cut_needs_no_saved_barrier() {
        let (info, _) = analyze_first("p(X) :- !, q(X).", "p", 1);
        assert!(info.has_cut);
        assert!(!info.cut_after_call);
        assert_eq!(info.cut_slot(), None);
    }

    #[test]
    fn deep_cut_gets_saved_barrier_slot() {
        let (info, _) = analyze_first("p(X) :- q(X), !, r(X).", "p", 1);
        assert!(info.cut_after_call);
        assert_eq!(info.cut_slot(), Some(info.num_perms));
        assert_eq!(info.env_size(), info.num_perms + 1);
    }

    #[test]
    fn builtins_recognized() {
        let p = parse_program("x.").unwrap();
        let mut s = p.symbols().clone();
        let is_atom = s.intern("is");
        let t = Term::Struct(is_atom, vec![Term::Var(0), Term::Int(1)]);
        assert!(is_builtin(&t, &s));
        let user = s.intern("frobnicate");
        let t = Term::Struct(user, vec![Term::Var(0)]);
        assert!(!is_builtin(&t, &s));
    }
}
