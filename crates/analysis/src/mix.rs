//! Dynamic instruction-class mix (paper Figure 2).
//!
//! Computed under the paper's hypothesis that "all operations have the
//! same duration": the fraction of each class among executed ops.

use symbol_intcode::{ExecStats, IciProgram, OpClass};

/// Fractions of executed operations per class; they sum to 1.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ClassMix {
    /// Data memory accesses.
    pub memory: f64,
    /// ALU / tag operations.
    pub alu: f64,
    /// Register moves.
    pub mv: f64,
    /// Branches, jumps, calls, returns.
    pub control: f64,
}

impl ClassMix {
    /// Measures the mix of one profiled run.
    pub fn measure(program: &IciProgram, stats: &ExecStats) -> ClassMix {
        let counts = stats.class_counts(program);
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return ClassMix::default();
        }
        let f = |class: OpClass| {
            counts
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, n)| *n as f64 / total as f64)
                .unwrap_or(0.0)
        };
        ClassMix {
            memory: f(OpClass::Memory),
            alu: f(OpClass::Alu),
            mv: f(OpClass::Move),
            control: f(OpClass::Control),
        }
    }

    /// Unweighted average over several mixes.
    pub fn average(mixes: &[ClassMix]) -> ClassMix {
        let n = mixes.len() as f64;
        if mixes.is_empty() {
            return ClassMix::default();
        }
        ClassMix {
            memory: mixes.iter().map(|m| m.memory).sum::<f64>() / n,
            alu: mixes.iter().map(|m| m.alu).sum::<f64>() / n,
            mv: mixes.iter().map(|m| m.mv).sum::<f64>() / n,
            control: mixes.iter().map(|m| m.control).sum::<f64>() / n,
        }
    }

    /// Sum of the fractions (1.0 for a measured mix).
    pub fn total(&self) -> f64 {
        self.memory + self.alu + self.mv + self.control
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Asm, Op, Word, R};

    #[test]
    fn fractions_sum_to_one() {
        let mut a = Asm::new();
        let e = a.fresh_label();
        let base = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: base,
            w: Word::int(1),
        });
        a.emit(Op::Ld {
            d: R(40),
            base,
            off: 0,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(e);
        let layout = symbol_intcode::Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let stats = symbol_intcode::Emulator::new(&p, &layout)
            .run(&symbol_intcode::ExecConfig::default())
            .unwrap()
            .stats;
        let mix = ClassMix::measure(&p, &stats);
        assert!((mix.total() - 1.0).abs() < 1e-12);
        assert!((mix.memory - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix.control - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix.mv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_mixes() {
        let a = ClassMix {
            memory: 0.4,
            alu: 0.2,
            mv: 0.2,
            control: 0.2,
        };
        let b = ClassMix {
            memory: 0.2,
            alu: 0.4,
            mv: 0.2,
            control: 0.2,
        };
        let avg = ClassMix::average(&[a, b]);
        assert!((avg.memory - 0.3).abs() < 1e-12);
        assert!((avg.alu - 0.3).abs() < 1e-12);
    }
}
