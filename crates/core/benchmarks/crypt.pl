% crypt -- Van Roy's cryptarithmetic multiplication puzzle: find digits
% for  OEE x EE  such that the partial products have parity patterns
% EOEE and EOE and the total has pattern OOEE (O = odd, E = even).
% One solution is 348 x 28 (partials 2784 and 696, total 9744).

main :-
    crypt([A, B, C, D, E]),
    N1 is 100 * A + 10 * B + C,
    N2 is 10 * D + E,
    T is N1 * N2,
    T >= 1000, T =< 9999.

crypt([A, B, C, D, E]) :-
    odd(A), even(B), even(C),
    even(D), D =\= 0, even(E),
    N1 is 100 * A + 10 * B + C,
    P1 is N1 * E, eoee(P1),
    P2 is N1 * D, eoe(P2),
    T is P1 + 10 * P2, ooee(T).

odd(1). odd(3). odd(5). odd(7). odd(9).
even(0). even(2). even(4). even(6). even(8).

eoee(N) :-
    N >= 1000, N =< 9999,
    D1 is (N // 1000) mod 2, D1 =:= 0,
    D2 is (N // 100) mod 2,  D2 =:= 1,
    D3 is (N // 10) mod 2,   D3 =:= 0,
    D4 is N mod 2,           D4 =:= 0.

eoe(N) :-
    N >= 100, N =< 999,
    D1 is (N // 100) mod 2, D1 =:= 0,
    D2 is (N // 10) mod 2,  D2 =:= 1,
    D3 is N mod 2,          D3 =:= 0.

ooee(N) :-
    N >= 1000, N =< 9999,
    D1 is (N // 1000) mod 2, D1 =:= 1,
    D2 is (N // 100) mod 2,  D2 =:= 1,
    D3 is (N // 10) mod 2,   D3 =:= 0,
    D4 is N mod 2,           D4 =:= 0.
