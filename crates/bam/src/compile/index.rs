//! Predicate-level compilation: first-argument indexing.
//!
//! With more than one clause and no variable in any clause's first head
//! argument, a `SwitchOnTerm` dispatches on the dereferenced call
//! argument, followed where useful by `SwitchOnConst`/`SwitchOnStruct`.
//! Chains of surviving alternatives use `Try`/`Retry`/`Trust`; a chain
//! of one clause is a plain jump — no choice point, which is how the
//! BAM model exploits the determinism of most Prolog predicates.

use symbol_prolog::{symbols::wk, PredId, Predicate, SymbolTable, Term};

use crate::compile::clause::{ClauseCompiler, FAIL};
use crate::error::CompileError;
use crate::instr::{BamInstr, BamLabel, Const, Functor, Slot};

/// First head-argument pattern of a clause.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pattern {
    Var,
    Cst(Const),
    Lst,
    Str(Functor),
}

fn pattern(head: &Term) -> Option<Pattern> {
    let first = match head {
        Term::Struct(_, args) => args.first()?,
        _ => return None,
    };
    Some(match first {
        Term::Var(_) => Pattern::Var,
        Term::Int(i) => Pattern::Cst(Const::Int(*i)),
        Term::Atom(a) => Pattern::Cst(Const::Atom(*a)),
        Term::Struct(f, args) if *f == wk::DOT && args.len() == 2 => Pattern::Lst,
        Term::Struct(f, args) => Pattern::Str(Functor::new(*f, args.len())),
    })
}

/// Compiled code for one predicate plus bookkeeping.
#[derive(Clone, Debug)]
pub struct CompiledPred {
    /// The predicate.
    pub id: PredId,
    /// BAM instructions (entry at index 0).
    pub code: Vec<BamInstr>,
    /// Predicates this one calls.
    pub called: Vec<PredId>,
}

/// Compiles all clauses of `pred` with first-argument indexing.
///
/// # Errors
///
/// Propagates [`CompileError`] from clause compilation.
pub fn compile_predicate(
    pred: &Predicate,
    symbols: &SymbolTable,
) -> Result<CompiledPred, CompileError> {
    let mut labels: u32 = 0;
    let fresh = |labels: &mut u32| {
        let l = BamLabel(*labels);
        *labels += 1;
        l
    };

    // Compile every clause body first (they follow the dispatch code).
    // Temporary index 0 is reserved for the switch scratch register.
    let mut clause_labels = Vec::new();
    let mut clause_code = Vec::new();
    let mut called = Vec::new();
    let mut temp_base = 1;
    {
        // Reserve labels for clause entries before compiling (clause
        // compilation allocates labels from the same counter).
        for _ in &pred.clauses {
            clause_labels.push(fresh(&mut labels));
        }
    }
    for clause in &pred.clauses {
        let cc = ClauseCompiler::new(clause, symbols, temp_base, &mut labels);
        let (code, calls, next_temp) = cc.compile()?;
        clause_code.push(code);
        called.extend(calls);
        temp_base = next_temp;
    }

    let arity = pred.id.arity;
    let n = pred.clauses.len();
    let patterns: Option<Vec<Pattern>> = pred.clauses.iter().map(|c| pattern(&c.head)).collect();

    let mut out = Vec::new();
    out.push(BamInstr::SetCutBarrier);

    let indexable = match &patterns {
        Some(ps) => n > 1 && ps.iter().all(|p| *p != Pattern::Var),
        None => false,
    };

    if !indexable {
        emit_chain(
            &mut out,
            &(0..n).collect::<Vec<_>>(),
            &clause_labels,
            arity,
            &mut labels,
        );
    } else {
        let ps = patterns.expect("indexable implies patterns");
        let scratch = Slot::Temp(0);

        let consts: Vec<usize> = (0..n)
            .filter(|&i| matches!(ps[i], Pattern::Cst(_)))
            .collect();
        let lists: Vec<usize> = (0..n).filter(|&i| ps[i] == Pattern::Lst).collect();
        let structs: Vec<usize> = (0..n)
            .filter(|&i| matches!(ps[i], Pattern::Str(_)))
            .collect();

        let lvar = fresh(&mut labels);
        let lcons = if consts.is_empty() {
            FAIL
        } else {
            fresh(&mut labels)
        };
        let llst = if lists.is_empty() {
            FAIL
        } else {
            fresh(&mut labels)
        };
        let lstr = if structs.is_empty() {
            FAIL
        } else {
            fresh(&mut labels)
        };

        out.push(BamInstr::SwitchOnTerm {
            arg: 0,
            scratch,
            var: lvar,
            cons: lcons,
            lst: llst,
            strct: lstr,
        });

        // Variable call: all clauses in order.
        out.push(BamInstr::Label(lvar));
        emit_chain(
            &mut out,
            &(0..n).collect::<Vec<_>>(),
            &clause_labels,
            arity,
            &mut labels,
        );

        // Constant dispatch.
        if !consts.is_empty() {
            out.push(BamInstr::Label(lcons));
            let mut distinct: Vec<Const> = Vec::new();
            for &i in &consts {
                if let Pattern::Cst(c) = ps[i] {
                    if !distinct.contains(&c) {
                        distinct.push(c);
                    }
                }
            }
            if distinct.len() == 1 {
                // All constant clauses share one constant: the value
                // still has to match it.
                emit_const_guarded(
                    &mut out,
                    scratch,
                    distinct[0],
                    &consts,
                    &clause_labels,
                    arity,
                    &mut labels,
                );
            } else {
                let mut table = Vec::new();
                let mut bodies: Vec<(BamLabel, Vec<usize>)> = Vec::new();
                for c in distinct {
                    let matching: Vec<usize> = consts
                        .iter()
                        .copied()
                        .filter(|&i| ps[i] == Pattern::Cst(c))
                        .collect();
                    if matching.len() == 1 {
                        table.push((c, clause_labels[matching[0]]));
                    } else {
                        let l = fresh(&mut labels);
                        table.push((c, l));
                        bodies.push((l, matching));
                    }
                }
                out.push(BamInstr::SwitchOnConst {
                    slot: scratch,
                    table,
                    default: FAIL,
                });
                for (l, matching) in bodies {
                    out.push(BamInstr::Label(l));
                    emit_chain(&mut out, &matching, &clause_labels, arity, &mut labels);
                }
            }
        }

        // List dispatch.
        if !lists.is_empty() {
            out.push(BamInstr::Label(llst));
            emit_chain(&mut out, &lists, &clause_labels, arity, &mut labels);
        }

        // Structure dispatch.
        if !structs.is_empty() {
            out.push(BamInstr::Label(lstr));
            let mut distinct: Vec<Functor> = Vec::new();
            for &i in &structs {
                if let Pattern::Str(f) = ps[i] {
                    if !distinct.contains(&f) {
                        distinct.push(f);
                    }
                }
            }
            let mut table = Vec::new();
            let mut bodies: Vec<(BamLabel, Vec<usize>)> = Vec::new();
            for f in distinct {
                let matching: Vec<usize> = structs
                    .iter()
                    .copied()
                    .filter(|&i| ps[i] == Pattern::Str(f))
                    .collect();
                if matching.len() == 1 {
                    table.push((f, clause_labels[matching[0]]));
                } else {
                    let l = fresh(&mut labels);
                    table.push((f, l));
                    bodies.push((l, matching));
                }
            }
            out.push(BamInstr::SwitchOnStruct {
                slot: scratch,
                table,
                default: FAIL,
            });
            for (l, matching) in bodies {
                out.push(BamInstr::Label(l));
                emit_chain(&mut out, &matching, &clause_labels, arity, &mut labels);
            }
        }
    }

    // Clause bodies.
    for (i, code) in clause_code.into_iter().enumerate() {
        out.push(BamInstr::Label(clause_labels[i]));
        out.extend(code);
    }

    called.sort_unstable();
    called.dedup();
    Ok(CompiledPred {
        id: pred.id,
        code: out,
        called,
    })
}

/// Emits a `Try`/`Retry`/`Trust` chain over `idxs` (a jump for one).
fn emit_chain(
    out: &mut Vec<BamInstr>,
    idxs: &[usize],
    clause_labels: &[BamLabel],
    arity: usize,
    labels: &mut u32,
) {
    match idxs {
        [] => out.push(BamInstr::Fail),
        [only] => out.push(BamInstr::Jump(clause_labels[*only])),
        [first, rest @ ..] => {
            let mut retry = BamLabel(*labels);
            *labels += 1;
            out.push(BamInstr::Try {
                arity,
                first: clause_labels[*first],
                retry,
            });
            for (k, alt) in rest.iter().enumerate() {
                out.push(BamInstr::Label(retry));
                if k + 1 == rest.len() {
                    out.push(BamInstr::Trust {
                        arity,
                        alt: clause_labels[*alt],
                    });
                } else {
                    let next = BamLabel(*labels);
                    *labels += 1;
                    out.push(BamInstr::Retry {
                        arity,
                        alt: clause_labels[*alt],
                        retry: next,
                    });
                    retry = next;
                }
            }
        }
    }
}

/// Emits a guard comparing `scratch` against the single constant `c`,
/// then the chain over the matching clauses.
fn emit_const_guarded(
    out: &mut Vec<BamInstr>,
    scratch: Slot,
    c: Const,
    idxs: &[usize],
    clause_labels: &[BamLabel],
    arity: usize,
    labels: &mut u32,
) {
    out.push(BamInstr::BranchNotConst {
        slot: scratch,
        c,
        target: FAIL,
    });
    emit_chain(out, idxs, clause_labels, arity, labels);
}
