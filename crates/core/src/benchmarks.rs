//! The benchmark suite: the subset of the Aquarius benchmarks used by
//! the paper, shipped as embedded Prolog sources, plus the paper's
//! published reference numbers for the comparison tables.

/// One benchmark program.
#[derive(Copy, Clone, Debug)]
pub struct Benchmark {
    /// Short name (as in the paper's tables).
    pub name: &'static str,
    /// Prolog source text; defines `main/0`, which self-checks its
    /// answer and fails on a wrong result.
    pub source: &'static str,
    /// One-line description of the workload.
    pub description: &'static str,
}

macro_rules! bench {
    ($name:literal, $file:literal, $desc:literal) => {
        Benchmark {
            name: $name,
            source: include_str!(concat!("../benchmarks/", $file)),
            description: $desc,
        }
    };
}

/// All benchmarks, in the paper's table order.
pub const ALL: &[Benchmark] = &[
    bench!("conc30", "conc30.pl", "concatenate a 30-element list"),
    bench!(
        "crypt",
        "crypt.pl",
        "parity-constrained cryptarithmetic multiplication"
    ),
    bench!(
        "divide10",
        "divide10.pl",
        "symbolic differentiation of a 10-fold quotient"
    ),
    bench!(
        "log10",
        "log10.pl",
        "symbolic differentiation of a 10-fold logarithm"
    ),
    bench!(
        "mu",
        "mu.pl",
        "Hofstadter's MU puzzle, depth-bounded search"
    ),
    bench!(
        "nreverse",
        "nreverse.pl",
        "naive reverse of a 30-element list"
    ),
    bench!(
        "ops8",
        "ops8.pl",
        "symbolic differentiation of an 8-operator expression"
    ),
    bench!(
        "prover",
        "prover.pl",
        "propositional sequent-calculus prover"
    ),
    bench!("qsort", "qsort.pl", "quicksort of a 50-element list"),
    bench!("queens_8", "queens_8.pl", "first solution of 8-queens"),
    bench!(
        "query",
        "query.pl",
        "database query for similar population densities"
    ),
    bench!("sendmore", "sendmore.pl", "SEND+MORE=MONEY cryptarithmetic"),
    bench!(
        "serialise",
        "serialise.pl",
        "serial numbers for a palindrome's characters"
    ),
    bench!("tak", "tak.pl", "Takeuchi function tak(18,12,6)"),
    bench!(
        "times10",
        "times10.pl",
        "symbolic differentiation of a 10-fold product"
    ),
    bench!("zebra", "zebra.pl", "the five-houses zebra puzzle"),
];

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    ALL.iter().find(|b| b.name == name)
}

/// The paper's published reference numbers, used as fixed comparison
/// columns where the original machines cannot be rebuilt (Table 4).
/// Values are milliseconds; `None` = not reported in the paper.
pub mod paper {
    /// One row of the paper's Table 4.
    #[derive(Copy, Clone, Debug)]
    pub struct Table4Row {
        /// Benchmark name.
        pub name: &'static str,
        /// Quintus Prolog (Sun 3/60) time in ms.
        pub quintus: Option<f64>,
        /// VLSI-PLM time in ms.
        pub vlsi_plm: Option<f64>,
        /// KCM time in ms.
        pub kcm: Option<f64>,
        /// BAM processor time in ms.
        pub bam: Option<f64>,
        /// SYMBOL-3 (the paper's own 3-processor prototype) time in ms.
        pub symbol3: Option<f64>,
    }

    /// Table 4 of the paper (execution times of Prolog implementations).
    pub const TABLE4: &[Table4Row] = &[
        Table4Row {
            name: "divide10",
            quintus: Some(0.41),
            vlsi_plm: Some(0.38),
            kcm: Some(0.091),
            bam: Some(0.0387),
            symbol3: Some(0.0423),
        },
        Table4Row {
            name: "log10",
            quintus: Some(0.15),
            vlsi_plm: Some(0.109),
            kcm: Some(0.039),
            bam: Some(0.0201),
            symbol3: Some(0.0146),
        },
        Table4Row {
            name: "mu",
            quintus: Some(12.407),
            vlsi_plm: Some(4.644),
            kcm: None,
            bam: Some(0.8557),
            symbol3: Some(1.2913),
        },
        Table4Row {
            name: "nreverse",
            quintus: Some(1.62),
            vlsi_plm: Some(2.10),
            kcm: Some(0.65),
            bam: Some(0.2057),
            symbol3: Some(0.2401),
        },
        Table4Row {
            name: "ops8",
            quintus: Some(0.24),
            vlsi_plm: Some(0.214),
            kcm: Some(0.059),
            bam: Some(0.0251),
            symbol3: Some(0.0274),
        },
        Table4Row {
            name: "prover",
            quintus: Some(8.67),
            vlsi_plm: Some(6.83),
            kcm: None,
            bam: Some(0.9722),
            symbol3: Some(1.2995),
        },
        Table4Row {
            name: "qsort",
            quintus: Some(4.82),
            vlsi_plm: Some(4.24),
            kcm: Some(1.32),
            bam: Some(0.2253),
            symbol3: Some(0.2192),
        },
        Table4Row {
            name: "queens_8",
            quintus: Some(21.20),
            vlsi_plm: Some(28.80),
            kcm: Some(1.205),
            bam: Some(1.2017),
            symbol3: Some(1.549),
        },
        Table4Row {
            name: "sendmore",
            quintus: Some(490.00),
            vlsi_plm: None,
            kcm: None,
            bam: Some(42.3364),
            symbol3: Some(44.0939),
        },
        Table4Row {
            name: "serialise",
            quintus: Some(3.10),
            vlsi_plm: Some(2.47),
            kcm: Some(1.22),
            bam: Some(0.5133),
            symbol3: Some(0.6556),
        },
        Table4Row {
            name: "tak",
            quintus: Some(1120.00),
            vlsi_plm: Some(940.00),
            kcm: None,
            bam: Some(31.047),
            symbol3: Some(32.067),
        },
        Table4Row {
            name: "times10",
            quintus: Some(0.345),
            vlsi_plm: Some(0.2470),
            kcm: Some(0.082),
            bam: Some(0.0346),
            symbol3: Some(0.0363),
        },
        Table4Row {
            name: "zebra",
            quintus: Some(425.00),
            vlsi_plm: None,
            kcm: None,
            bam: Some(86.890),
            symbol3: Some(119.184),
        },
    ];

    /// One row of the paper's Table 1 (trace vs basic-block compaction).
    #[derive(Copy, Clone, Debug)]
    pub struct Table1Row {
        /// Benchmark name.
        pub name: &'static str,
        /// Trace-scheduling speed-up over sequential.
        pub trace_speedup: f64,
        /// Average trace length (ops).
        pub trace_len: f64,
        /// Basic-block speed-up over sequential (paper average 1.65).
        pub bb_speedup: Option<f64>,
    }

    /// Table 1 of the paper (speed-up and average length; the paper
    /// prints basic-block columns we reproduce as an aggregate).
    pub const TABLE1: &[Table1Row] = &[
        Table1Row {
            name: "conc30",
            trace_speedup: 1.65,
            trace_len: 11.88,
            bb_speedup: None,
        },
        Table1Row {
            name: "divide10",
            trace_speedup: 1.98,
            trace_len: 13.35,
            bb_speedup: None,
        },
        Table1Row {
            name: "log10",
            trace_speedup: 1.81,
            trace_len: 12.95,
            bb_speedup: None,
        },
        Table1Row {
            name: "mu",
            trace_speedup: 2.28,
            trace_len: 6.94,
            bb_speedup: None,
        },
        Table1Row {
            name: "nreverse",
            trace_speedup: 1.79,
            trace_len: 12.55,
            bb_speedup: None,
        },
        Table1Row {
            name: "ops8",
            trace_speedup: 2.07,
            trace_len: 12.71,
            bb_speedup: None,
        },
        Table1Row {
            name: "prover",
            trace_speedup: 2.20,
            trace_len: 14.64,
            bb_speedup: None,
        },
        Table1Row {
            name: "query",
            trace_speedup: 1.93,
            trace_len: 14.87,
            bb_speedup: None,
        },
        Table1Row {
            name: "queens_8",
            trace_speedup: 1.90,
            trace_len: 10.43,
            bb_speedup: None,
        },
        Table1Row {
            name: "sendmore",
            trace_speedup: 3.18,
            trace_len: 8.83,
            bb_speedup: None,
        },
        Table1Row {
            name: "serialise",
            trace_speedup: 2.68,
            trace_len: 11.11,
            bb_speedup: None,
        },
        Table1Row {
            name: "tak",
            trace_speedup: 2.30,
            trace_len: 9.05,
            bb_speedup: None,
        },
        Table1Row {
            name: "times10",
            trace_speedup: 2.08,
            trace_len: 13.35,
            bb_speedup: None,
        },
        Table1Row {
            name: "zebra",
            trace_speedup: 2.27,
            trace_len: 10.08,
            bb_speedup: None,
        },
    ];

    /// Paper Table 2: average probability of faulty branch prediction.
    pub const TABLE2: &[(&str, f64)] = &[
        ("conc30", 0.0292),
        ("crypt", 0.0408),
        ("divide10", 0.0935),
        ("log10", 0.0354),
        ("mu", 0.1215),
        ("nreverse", 0.0523),
        ("ops8", 0.1297),
        ("prover", 0.0976),
        ("qsort", 0.2376),
        ("queens_8", 0.0973),
        ("query", 0.1164),
        ("sendmore", 0.0888),
        ("serialise", 0.0896),
        ("tak", 0.1994),
        ("times10", 0.0935),
        ("zebra", 0.1898),
    ];

    /// Paper Table 3: sequential cycle counts per benchmark.
    pub const TABLE3_SEQ: &[(&str, u64)] = &[
        ("conc30", 798),
        ("divide10", 1902),
        ("log10", 626),
        ("mu", 49_099),
        ("nreverse", 8925),
        ("ops8", 1241),
        ("prover", 53_791),
        ("qsort", 9596),
        ("queens_8", 56_924),
        ("sendmore", 1_859_889),
        ("serialise", 30_080),
        ("tak", 1_364_190),
        ("times10", 1704),
        ("zebra", 5_031_109),
    ];

    /// Paper-reported average speed-ups for the unit sweep (Table 3 /
    /// Figure 6): BAM and 1..5-unit VLIW configurations.
    pub const TABLE3_AVG_SPEEDUPS: &[(&str, f64)] = &[
        ("BAM", 1.58),
        ("1 unit", 1.58),
        ("2 units", 1.68),
        ("3 units", 1.89),
        ("4 units", 1.95),
        ("5 units", 1.96),
    ];

    /// SYMBOL-3 clock rate used for absolute times (paper §5.2).
    pub const SYMBOL3_CLOCK_HZ: f64 = 30.0e6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_embedded() {
        assert_eq!(ALL.len(), 16);
        for b in ALL {
            assert!(!b.source.is_empty(), "{} source empty", b.name);
            assert!(b.source.contains("main"), "{} lacks main/0", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("tak").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn paper_tables_reference_known_benchmarks() {
        for row in paper::TABLE4 {
            assert!(by_name(row.name).is_some(), "{}", row.name);
        }
        for (name, _) in paper::TABLE2 {
            assert!(by_name(name).is_some(), "{name}");
        }
    }
}
