//! Property tests of the run-time unification machinery, via the whole
//! pipeline: random ground terms are unified by the compiled `=/2`
//! and compared against structural equality computed in Rust.

use proptest::prelude::*;
use symbol_core::pipeline::{Compiled, PipelineError};

/// A printable random ground term.
#[derive(Clone, Debug, PartialEq, Eq)]
enum G {
    Int(i64),
    Atom(&'static str),
    Struct(&'static str, Vec<G>),
    List(Vec<G>),
}

impl G {
    fn render(&self, out: &mut String) {
        match self {
            G::Int(i) => out.push_str(&i.to_string()),
            G::Atom(a) => out.push_str(a),
            G::Struct(f, args) => {
                out.push_str(f);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    a.render(out);
                }
                out.push(')');
            }
            G::List(items) => {
                out.push('[');
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    a.render(out);
                }
                out.push(']');
            }
        }
    }

    fn text(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

fn ground() -> impl Strategy<Value = G> {
    let leaf = prop_oneof![
        (-99i64..99).prop_map(G::Int),
        prop::sample::select(vec!["a", "b", "foo"]).prop_map(G::Atom),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec!["f", "g", "h"]),
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(f, a)| G::Struct(f, a)),
            prop::collection::vec(inner, 0..3).prop_map(G::List),
        ]
    })
}

fn runs(src: &str) -> bool {
    let c = Compiled::from_source(src).expect("compiles");
    match c.run_sequential() {
        Ok(_) => true,
        Err(PipelineError::WrongAnswer) => false,
        Err(e) => panic!("pipeline error: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ground_unification_agrees_with_equality(a in ground(), b in ground()) {
        let src = format!("main :- {} = {}.", a.text(), b.text());
        prop_assert_eq!(runs(&src), a == b, "{}", src);
    }

    #[test]
    fn unification_is_reflexive(a in ground()) {
        let src = format!("main :- {} = {}.", a.text(), a.text());
        prop_assert!(runs(&src));
    }

    #[test]
    fn struct_eq_agrees_with_unification_on_ground_terms(a in ground(), b in ground()) {
        let eq = format!("main :- {} == {}.", a.text(), b.text());
        prop_assert_eq!(runs(&eq), a == b);
        let ne = format!("main :- {} \\== {}.", a.text(), b.text());
        prop_assert_eq!(runs(&ne), a != b);
    }

    #[test]
    fn variable_binds_to_any_ground_term(a in ground()) {
        let src = format!("main :- X = {}, X == {}.", a.text(), a.text());
        prop_assert!(runs(&src));
    }

    #[test]
    fn unification_through_a_call_round_trips(a in ground()) {
        let src = format!(
            "main :- id({}, Y), Y == {}.
             id(X, X).",
            a.text(),
            a.text()
        );
        prop_assert!(runs(&src));
    }
}
