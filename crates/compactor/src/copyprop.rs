//! Local copy propagation and dead-move elimination on IntCode.
//!
//! Register moves make up roughly a quarter of the dynamic mix, so a
//! cleanup pass — standard in any real back end, and surely part of
//! the paper's "Parallelizing Compiler" — is worth having: each basic
//! block is rewritten so later uses read a move's source directly,
//! then moves whose destination is no longer needed (not used later in
//! the block and not live out) are deleted. In practice most moves
//! turn out to be calling convention (argument registers, routine
//! linkage) or dereference-loop state and must stay; the pass removes
//! the residual pure copies, a 2–4% dynamic reduction.
//!
//! The profile is carried along: retained ops keep their Expect and
//! taken counts, so the optimized program can feed the compactor and
//! the analytic cost models directly.

use std::collections::HashMap;

use symbol_intcode::{ExecStats, IciProgram, Label, Op, Operand, ProgramError, R};

use crate::cfg::Cfg;
use crate::liveness::Liveness;

/// Result of the optimization.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The rewritten program.
    pub program: IciProgram,
    /// Remapped execution statistics.
    pub stats: ExecStats,
    /// Ops removed.
    pub removed: usize,
}

/// Runs copy propagation + dead-move elimination.
///
/// # Panics
///
/// Panics if the rewritten program fails validation — an internal bug
/// of this pass. Error-propagating callers (the serving tier) use
/// [`try_copy_propagate`] instead.
pub fn copy_propagate(program: &IciProgram, stats: &ExecStats) -> Optimized {
    match try_copy_propagate(program, stats) {
        Ok(o) => o,
        Err(e) => panic!("copy propagation produced a malformed program: {e}"),
    }
}

/// [`copy_propagate`] returning the [`ProgramError`] instead of
/// panicking when the rewritten program fails validation.
///
/// # Errors
///
/// The first structural defect [`IciProgram::try_new`] finds in the
/// rewritten program.
pub fn try_copy_propagate(
    program: &IciProgram,
    stats: &ExecStats,
) -> Result<Optimized, ProgramError> {
    let cfg = Cfg::build(program, stats);
    let live = Liveness::compute(program, &cfg);
    let ops = program.ops();
    let groups = program.groups();

    let mut new_ops: Vec<Op> = Vec::with_capacity(ops.len());
    let mut new_groups: Vec<u32> = Vec::with_capacity(ops.len());
    let mut new_expect: Vec<u64> = Vec::with_capacity(ops.len());
    let mut new_taken: Vec<u64> = Vec::with_capacity(ops.len());
    // old op index -> new op index (for label rebinding); deleted ops
    // map to the next retained op.
    let mut index_map: Vec<usize> = vec![0; ops.len() + 1];

    for (bid, block) in cfg.blocks.iter().enumerate() {
        // live-out of the block = union of successors' live-ins;
        // conservatively everything for indirect/halt terminators.
        let mut live_out: Option<std::collections::HashSet<R>> = Some(
            block
                .succs
                .iter()
                .flat_map(|e| live.live_in(e.dest()).iter().copied())
                .collect(),
        );
        let last = &ops[block.end - 1];
        if matches!(last, Op::JmpR { .. } | Op::Halt { .. }) {
            live_out = None; // unknown: keep everything
        }
        let _ = bid;

        // Forward pass: propagate copies.
        let mut copy_of: HashMap<R, R> = HashMap::new();
        let mut rewritten: Vec<Op> = Vec::with_capacity(block.len());
        for src_op in &ops[block.start..block.end] {
            let mut op = src_op.clone();
            substitute_uses(&mut op, &copy_of);
            // definitions invalidate copies involving the dest
            if let Some(d) = op.def() {
                copy_of.remove(&d);
                copy_of.retain(|_, src| *src != d);
                if let Op::Mv { d, s } = op {
                    if d != s {
                        copy_of.insert(d, s);
                    }
                }
            }
            rewritten.push(op);
        }

        // Backward pass: delete moves whose dest is dead.
        let mut keep = vec![true; rewritten.len()];
        for (k, op) in rewritten.iter().enumerate() {
            let Op::Mv { d, s } = op else { continue };
            if d == s {
                keep[k] = false;
                continue;
            }
            // fixed registers are architectural state: never delete
            if d.0 < symbol_intcode::layout::reg::FIRST_TEMP {
                continue;
            }
            // scan forward, stopping at a redefinition: uses beyond it
            // read the new value
            let mut needed = false;
            for later in &rewritten[k + 1..] {
                if later.uses().contains(d) {
                    needed = true;
                    break;
                }
                if later.def() == Some(*d) {
                    break;
                }
            }
            if needed {
                continue;
            }
            // dead within the block: also dead across it?
            let live_after = match &live_out {
                None => true,
                Some(set) => {
                    // if d is redefined later in the block the live-out
                    // does not apply to THIS def
                    let redefined_later = rewritten[k + 1..]
                        .iter()
                        .any(|later| later.def() == Some(*d));
                    !redefined_later && set.contains(d)
                }
            };
            if !live_after {
                keep[k] = false;
            }
        }

        for (k, op) in rewritten.into_iter().enumerate() {
            let old = block.start + k;
            index_map[old] = new_ops.len();
            if keep[k] {
                new_ops.push(op);
                new_groups.push(groups[old]);
                new_expect.push(stats.expect[old]);
                new_taken.push(stats.taken[old]);
            }
        }
    }
    index_map[ops.len()] = new_ops.len();
    // deleted ops must map to the next retained op: fix up backwards
    for i in (0..ops.len()).rev() {
        if index_map[i] > index_map[i + 1] {
            index_map[i] = index_map[i + 1];
        }
    }

    // Rebind labels.
    let mut label_at: HashMap<Label, usize> = HashMap::new();
    for (lid, &addr) in program.label_table().iter().enumerate() {
        if addr != usize::MAX {
            label_at.insert(Label(lid as u32), index_map[addr]);
        }
    }
    let removed = ops.len() - new_ops.len();
    let num_labels = program.label_table().len() as u32;
    let optimized =
        IciProgram::try_new(new_ops, new_groups, label_at, num_labels, program.entry())?;
    Ok(Optimized {
        program: optimized,
        stats: ExecStats {
            expect: new_expect,
            taken: new_taken,
        },
        removed,
    })
}

fn substitute_uses(op: &mut Op, copy_of: &HashMap<R, R>) {
    let sub = |r: &mut R| {
        if let Some(&s) = copy_of.get(r) {
            *r = s;
        }
    };
    let sub_operand = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            if let Some(&s) = copy_of.get(r) {
                *r = s;
            }
        }
    };
    match op {
        Op::Ld { base, .. } => sub(base),
        Op::St { s, base, .. } => {
            sub(s);
            sub(base);
        }
        Op::Mv { s, .. } => sub(s),
        Op::MvI { .. } | Op::Jmp { .. } | Op::Halt { .. } => {}
        Op::Alu { a, b, .. } | Op::AddA { a, b, .. } => {
            sub(a);
            sub_operand(b);
        }
        Op::MkTag { s, .. } => sub(s),
        Op::Br { a, b, .. } => {
            sub(a);
            sub_operand(b);
        }
        Op::BrTag { a, .. } | Op::BrWord { a, .. } => sub(a),
        Op::BrWEq { a, b, .. } => {
            sub(a);
            sub(b);
        }
        Op::JmpR { r } => sub(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Asm, Cond, Emulator, ExecConfig, Word};

    fn run_both(build: impl FnOnce(&mut Asm) -> Label) -> (u64, u64, usize) {
        let mut a = Asm::new();
        let entry = build(&mut a);
        let p = a.finish(entry);
        let layout = symbol_intcode::Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        };
        let before = Emulator::new(&p, &layout)
            .run(&ExecConfig::default())
            .expect("original runs");
        let opt = copy_propagate(&p, &before.stats);
        let after = Emulator::new(&opt.program, &layout)
            .run(&ExecConfig::default())
            .expect("optimized runs");
        assert_eq!(before.outcome, after.outcome);
        (before.steps, after.steps, opt.removed)
    }

    #[test]
    fn dead_move_chain_is_removed() {
        let (before, after, removed) = run_both(|a| {
            let e = a.fresh_label();
            let ok = a.fresh_label();
            let t0 = a.fresh_reg();
            let t1 = a.fresh_reg();
            let t2 = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: t0,
                w: Word::int(7),
            });
            a.emit(Op::Mv { d: t1, s: t0 });
            a.emit(Op::Mv { d: t2, s: t1 });
            a.emit(Op::Br {
                cond: Cond::Eq,
                a: t2,
                b: Operand::Imm(7),
                t: ok,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(removed, 2, "both moves become dead after propagation");
        assert_eq!(after, before - 2);
    }

    #[test]
    fn moves_live_across_blocks_are_kept() {
        let (_, _, removed) = run_both(|a| {
            let e = a.fresh_label();
            let next = a.fresh_label();
            let bad = a.fresh_label();
            let t0 = a.fresh_reg();
            let t1 = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: t0,
                w: Word::int(7),
            });
            a.emit(Op::Mv { d: t1, s: t0 });
            a.emit(Op::Jmp { t: next });
            a.bind(next);
            // t1 used in another block: the move must survive
            a.emit(Op::Br {
                cond: Cond::Eq,
                a: t1,
                b: Operand::Imm(8),
                t: bad,
            });
            a.emit(Op::Halt { success: true });
            a.bind(bad);
            a.emit(Op::Halt { success: false });
            e
        });
        assert_eq!(removed, 0, "the move is live across the jump");
    }

    #[test]
    fn copy_into_branch_operand_is_propagated() {
        let (_, after, _) = run_both(|a| {
            let e = a.fresh_label();
            let ok = a.fresh_label();
            let t0 = a.fresh_reg();
            let t1 = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: t0,
                w: Word::int(1),
            });
            a.emit(Op::Mv { d: t1, s: t0 });
            a.emit(Op::BrTag {
                a: t1,
                tag: symbol_intcode::Tag::Int,
                eq: true,
                t: ok,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(after, 3, "mvi + branch + halt");
    }
}
