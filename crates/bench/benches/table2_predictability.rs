//! Table 2 — probability of faulty branch prediction. Times the
//! predictability measurement, then regenerates the table.

use std::hint::black_box;

use symbol_analysis::PredictStats;
use symbol_bench::timing::Harness;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_core::experiments::{measure_all, reports};

fn bench(h: &mut Harness) {
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        h.bench_function(&format!("table2_pfp/{name}"), |b| {
            b.iter(|| PredictStats::measure(black_box(&cc.ici), black_box(&run.stats)).average())
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table2_predictability(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
