//! The Intermediate Code Instruction (ICI) set.
//!
//! ICIs are simple operations "directly expressing primitive hardware
//! functionalities" (paper §3.1): loads/stores with register+offset
//! addressing, register moves, value-field ALU operations, tag
//! insertion, and branches — including the Prolog-specific *branch on
//! tag field*, the key architectural support of the paper's machine.
//!
//! Every op belongs to one of four [`OpClass`]es, which drive both the
//! instruction-mix statistics (Figure 2) and the machine resource model
//! (one memory / ALU / move / control slot per unit per cycle).

use crate::word::{Tag, Word};
use std::fmt;

/// Virtual register id. Fixed machine registers occupy the low ids
/// (see [`crate::layout::reg`]); everything above is an unbounded
/// renamed temporary space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct R(pub u32);

impl fmt::Display for R {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Program label id. Labels are stable identities: code words
/// (`Tag::Cod`) store label ids, and each machine resolves them to its
/// own instruction addresses, so the same data works for sequential,
/// BAM-cost and rescheduled VLIW execution.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Second source operand: register or value-field immediate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Register.
    Reg(R),
    /// Immediate value (compared/combined with the value field).
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// Value-field comparison conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cond {
    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Evaluates the condition.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

/// ALU operations on value fields (result tag is `Int`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Floored modulo (ISO `mod`: result takes the divisor's sign).
    Mod,
    /// Truncated remainder (ISO `rem`: result takes the dividend's
    /// sign).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Maximum (used by environment allocation).
    Max,
}

impl AluOp {
    /// Evaluates the operation on two value fields. `None` signals
    /// division (or modulo) by zero.
    ///
    /// This is the single definition of ALU semantics: the sequential
    /// emulator and the VLIW simulator both call it, so the two
    /// machines cannot drift apart.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            AluOp::Mod => {
                if b == 0 {
                    return None;
                }
                let r = a.wrapping_rem(b);
                if r != 0 && (r < 0) != (b < 0) {
                    r + b
                } else {
                    r
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Max => a.max(b),
        })
    }
}

/// Operation classes (paper Figure 2 categories).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Data memory access.
    Memory,
    /// ALU / tag manipulation.
    Alu,
    /// Register move / immediate load.
    Move,
    /// Branches, jumps, halts.
    Control,
}

impl OpClass {
    /// Number of classes — the width of every per-class counter array.
    pub const COUNT: usize = 4;

    /// Every class, in canonical accounting order. This order *is* the
    /// index space: `ALL[c.index()] == c`. All per-class arrays in the
    /// emulator, the VLIW machine model and the analysis layer are
    /// indexed through [`OpClass::index`], so the mapping lives in
    /// exactly one place.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Memory,
        OpClass::Alu,
        OpClass::Move,
        OpClass::Control,
    ];

    /// The class's canonical index into per-class counter arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OpClass::Memory => 0,
            OpClass::Alu => 1,
            OpClass::Move => 2,
            OpClass::Control => 3,
        }
    }

    /// Lower-case display name (also used as a metric label value).
    pub const fn name(self) -> &'static str {
        match self {
            OpClass::Memory => "memory",
            OpClass::Alu => "alu",
            OpClass::Move => "move",
            OpClass::Control => "control",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One Intermediate Code Instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// `d = mem[base.val + off]`.
    Ld {
        /// Destination register.
        d: R,
        /// Base address register.
        base: R,
        /// Word offset.
        off: i32,
    },
    /// `mem[base.val + off] = s`.
    St {
        /// Stored register.
        s: R,
        /// Base address register.
        base: R,
        /// Word offset.
        off: i32,
    },
    /// `d = s`.
    Mv {
        /// Destination.
        d: R,
        /// Source.
        s: R,
    },
    /// `d = w` (tagged immediate).
    MvI {
        /// Destination.
        d: R,
        /// Immediate word.
        w: Word,
    },
    /// `d.val = a.val (op) b; d.tag = Int`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        d: R,
        /// Left source.
        a: R,
        /// Right source.
        b: Operand,
    },
    /// Address add: `d.val = a.val + b; d.tag = a.tag`.
    AddA {
        /// Destination.
        d: R,
        /// Left source (pointer).
        a: R,
        /// Right source.
        b: Operand,
    },
    /// Tag insertion: `d = <tag, s.val>`.
    MkTag {
        /// Destination.
        d: R,
        /// Source of the value field.
        s: R,
        /// Inserted tag.
        tag: Tag,
    },
    /// Conditional branch on value fields.
    Br {
        /// Condition.
        cond: Cond,
        /// Left source.
        a: R,
        /// Right source.
        b: Operand,
        /// Target label.
        t: Label,
    },
    /// Branch on the tag field: taken when `(a.tag == tag) == eq`.
    BrTag {
        /// Tested register.
        a: R,
        /// Tag compared against.
        tag: Tag,
        /// Branch on equality (`true`) or inequality (`false`).
        eq: bool,
        /// Target label.
        t: Label,
    },
    /// Branch comparing a full word against an immediate word.
    BrWord {
        /// Tested register.
        a: R,
        /// Immediate word.
        w: Word,
        /// Branch on equality (`true`) or inequality (`false`).
        eq: bool,
        /// Target label.
        t: Label,
    },
    /// Branch comparing two registers as full words.
    BrWEq {
        /// Left register.
        a: R,
        /// Right register.
        b: R,
        /// Branch on equality (`true`) or inequality (`false`).
        eq: bool,
        /// Target label.
        t: Label,
    },
    /// Unconditional jump.
    Jmp {
        /// Target label.
        t: Label,
    },
    /// Indirect jump through a `Cod` word in `r`.
    JmpR {
        /// Register holding the code word.
        r: R,
    },
    /// Stop the machine.
    Halt {
        /// Whether the program succeeded.
        success: bool,
    },
}

impl Op {
    /// The operation's class.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Ld { .. } | Op::St { .. } => OpClass::Memory,
            Op::Mv { .. } | Op::MvI { .. } => OpClass::Move,
            Op::Alu { .. } | Op::AddA { .. } | Op::MkTag { .. } => OpClass::Alu,
            Op::Br { .. }
            | Op::BrTag { .. }
            | Op::BrWord { .. }
            | Op::BrWEq { .. }
            | Op::Jmp { .. }
            | Op::JmpR { .. }
            | Op::Halt { .. } => OpClass::Control,
        }
    }

    /// Registers read by the op.
    pub fn uses(&self) -> Vec<R> {
        let mut u = Vec::with_capacity(2);
        let operand = |o: &Operand, u: &mut Vec<R>| {
            if let Operand::Reg(r) = o {
                u.push(*r);
            }
        };
        match self {
            Op::Ld { base, .. } => u.push(*base),
            Op::St { s, base, .. } => {
                u.push(*s);
                u.push(*base);
            }
            Op::Mv { s, .. } => u.push(*s),
            Op::MvI { .. } => {}
            Op::Alu { a, b, .. } | Op::AddA { a, b, .. } => {
                u.push(*a);
                operand(b, &mut u);
            }
            Op::MkTag { s, .. } => u.push(*s),
            Op::Br { a, b, .. } => {
                u.push(*a);
                operand(b, &mut u);
            }
            Op::BrTag { a, .. } | Op::BrWord { a, .. } => u.push(*a),
            Op::BrWEq { a, b, .. } => {
                u.push(*a);
                u.push(*b);
            }
            Op::Jmp { .. } | Op::Halt { .. } => {}
            Op::JmpR { r } => u.push(*r),
        }
        u
    }

    /// Register written by the op, if any.
    pub fn def(&self) -> Option<R> {
        match self {
            Op::Ld { d, .. }
            | Op::Mv { d, .. }
            | Op::MvI { d, .. }
            | Op::Alu { d, .. }
            | Op::AddA { d, .. }
            | Op::MkTag { d, .. } => Some(*d),
            _ => None,
        }
    }

    /// Explicit branch target, if the op has one.
    pub fn target(&self) -> Option<Label> {
        match self {
            Op::Br { t, .. }
            | Op::BrTag { t, .. }
            | Op::BrWord { t, .. }
            | Op::BrWEq { t, .. }
            | Op::Jmp { t } => Some(*t),
            _ => None,
        }
    }

    /// Retargets the explicit branch target (no-op for other ops).
    pub fn set_target(&mut self, new: Label) {
        match self {
            Op::Br { t, .. }
            | Op::BrTag { t, .. }
            | Op::BrWord { t, .. }
            | Op::BrWEq { t, .. }
            | Op::Jmp { t } => *t = new,
            _ => {}
        }
    }

    /// Whether the op is a control transfer (class Control).
    pub fn is_control(&self) -> bool {
        self.class() == OpClass::Control
    }

    /// Whether the op is a *conditional* branch — a control transfer
    /// that can either be taken or fall through, the only kind with a
    /// meaningful taken-probability.
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self,
            Op::Br { .. } | Op::BrTag { .. } | Op::BrWord { .. } | Op::BrWEq { .. }
        )
    }

    /// Whether control can fall through to the following op.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Op::Jmp { .. } | Op::JmpR { .. } | Op::Halt { .. })
    }

    /// Whether the op reads or writes data memory.
    pub fn touches_memory(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Ld { d, base, off } => write!(f, "ld   {d}, [{base}{off:+}]"),
            Op::St { s, base, off } => write!(f, "st   [{base}{off:+}], {s}"),
            Op::Mv { d, s } => write!(f, "mv   {d}, {s}"),
            Op::MvI { d, w } => write!(f, "mvi  {d}, {w}"),
            Op::Alu { op, d, a, b } => {
                write!(f, "{:<4} {d}, {a}, {b}", format!("{op:?}").to_lowercase())
            }
            Op::AddA { d, a, b } => write!(f, "adda {d}, {a}, {b}"),
            Op::MkTag { d, s, tag } => write!(f, "mktg {d}, {s}, {tag}"),
            Op::Br { cond, a, b, t } => {
                write!(
                    f,
                    "b{:<3} {a}, {b}, {t}",
                    format!("{cond:?}").to_lowercase()
                )
            }
            Op::BrTag { a, tag, eq, t } => {
                write!(f, "btag {a} {}= {tag}, {t}", if *eq { "=" } else { "!" })
            }
            Op::BrWord { a, w, eq, t } => {
                write!(f, "bwrd {a} {}= {w}, {t}", if *eq { "=" } else { "!" })
            }
            Op::BrWEq { a, b, eq, t } => {
                write!(f, "bweq {a} {}= {b}, {t}", if *eq { "=" } else { "!" })
            }
            Op::Jmp { t } => write!(f, "jmp  {t}"),
            Op::JmpR { r } => write!(f, "jmpr {r}"),
            Op::Halt { success } => write!(f, "halt {success}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_ops() {
        assert_eq!(
            Op::Ld {
                d: R(1),
                base: R(2),
                off: 0
            }
            .class(),
            OpClass::Memory
        );
        assert_eq!(Op::Mv { d: R(1), s: R(2) }.class(), OpClass::Move);
        assert_eq!(
            Op::MkTag {
                d: R(1),
                s: R(2),
                tag: Tag::Lst
            }
            .class(),
            OpClass::Alu
        );
        assert_eq!(Op::Halt { success: true }.class(), OpClass::Control);
    }

    #[test]
    fn class_index_round_trips_and_covers_every_op_variant() {
        // ALL is the inverse of index().
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(OpClass::ALL[c.index()], *c);
        }
        // One value of every `Op` variant; `.class().index()` must be
        // in range for each, so every per-class array sized
        // `OpClass::COUNT` can hold every op. If a variant is added
        // without extending this list, the count check below fails.
        let every_variant: Vec<Op> = vec![
            Op::Ld {
                d: R(0),
                base: R(1),
                off: 0,
            },
            Op::St {
                s: R(0),
                base: R(1),
                off: 0,
            },
            Op::Mv { d: R(0), s: R(1) },
            Op::MvI {
                d: R(0),
                w: Word::int(0),
            },
            Op::Alu {
                op: AluOp::Add,
                d: R(0),
                a: R(1),
                b: Operand::Imm(1),
            },
            Op::AddA {
                d: R(0),
                a: R(1),
                b: Operand::Imm(1),
            },
            Op::MkTag {
                d: R(0),
                s: R(1),
                tag: Tag::Int,
            },
            Op::Br {
                cond: Cond::Eq,
                a: R(0),
                b: Operand::Imm(0),
                t: Label(0),
            },
            Op::BrTag {
                a: R(0),
                tag: Tag::Int,
                eq: true,
                t: Label(0),
            },
            Op::BrWord {
                a: R(0),
                w: Word::int(0),
                eq: true,
                t: Label(0),
            },
            Op::BrWEq {
                a: R(0),
                b: R(1),
                eq: true,
                t: Label(0),
            },
            Op::Jmp { t: Label(0) },
            Op::JmpR { r: R(0) },
            Op::Halt { success: true },
        ];
        assert_eq!(every_variant.len(), 14, "one entry per Op variant");
        let mut per_class = [0usize; OpClass::COUNT];
        for op in &every_variant {
            per_class[op.class().index()] += 1;
        }
        assert_eq!(per_class[OpClass::Memory.index()], 2, "Ld, St");
        assert_eq!(per_class[OpClass::Alu.index()], 3, "Alu, AddA, MkTag");
        assert_eq!(per_class[OpClass::Move.index()], 2, "Mv, MvI");
        assert_eq!(per_class[OpClass::Control.index()], 7, "branch family");
    }

    #[test]
    fn uses_and_defs() {
        let op = Op::Alu {
            op: AluOp::Add,
            d: R(3),
            a: R(1),
            b: Operand::Reg(R(2)),
        };
        assert_eq!(op.uses(), vec![R(1), R(2)]);
        assert_eq!(op.def(), Some(R(3)));
        let st = Op::St {
            s: R(4),
            base: R(5),
            off: 1,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![R(4), R(5)]);
    }

    #[test]
    fn cond_eval_matrix() {
        assert!(Cond::Lt.eval(1, 2));
        assert!(!Cond::Lt.eval(2, 2));
        assert!(Cond::Le.eval(2, 2));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(Cond::Gt.eval(3, 2));
    }

    #[test]
    fn fall_through_rules() {
        assert!(!Op::Jmp { t: Label(0) }.falls_through());
        assert!(!Op::JmpR { r: R(0) }.falls_through());
        assert!(Op::Br {
            cond: Cond::Eq,
            a: R(0),
            b: Operand::Imm(0),
            t: Label(0)
        }
        .falls_through());
    }

    #[test]
    fn retarget() {
        let mut op = Op::Jmp { t: Label(1) };
        op.set_target(Label(9));
        assert_eq!(op.target(), Some(Label(9)));
    }

    #[test]
    fn conditional_branch_classification() {
        assert!(Op::Br {
            cond: Cond::Eq,
            a: R(0),
            b: Operand::Imm(0),
            t: Label(0)
        }
        .is_conditional_branch());
        assert!(Op::BrTag {
            a: R(0),
            tag: Tag::Int,
            eq: true,
            t: Label(0)
        }
        .is_conditional_branch());
        assert!(!Op::Jmp { t: Label(0) }.is_conditional_branch());
        assert!(!Op::JmpR { r: R(0) }.is_conditional_branch());
        assert!(!Op::Halt { success: true }.is_conditional_branch());
    }

    #[test]
    fn floored_mod_follows_divisor_sign() {
        // ISO: -7 mod 3 =:= 2, 7 mod -3 =:= -2, -7 mod -3 =:= -1
        assert_eq!(AluOp::Mod.eval(-7, 3), Some(2));
        assert_eq!(AluOp::Mod.eval(7, -3), Some(-2));
        assert_eq!(AluOp::Mod.eval(-7, -3), Some(-1));
        assert_eq!(AluOp::Mod.eval(7, 3), Some(1));
        assert_eq!(AluOp::Mod.eval(-6, 3), Some(0));
        assert_eq!(AluOp::Mod.eval(0, 5), Some(0));
    }

    #[test]
    fn truncated_rem_follows_dividend_sign() {
        // ISO: -7 rem 3 =:= -1, 7 rem -3 =:= 1, -7 rem -3 =:= -1
        assert_eq!(AluOp::Rem.eval(-7, 3), Some(-1));
        assert_eq!(AluOp::Rem.eval(7, -3), Some(1));
        assert_eq!(AluOp::Rem.eval(-7, -3), Some(-1));
        assert_eq!(AluOp::Rem.eval(7, 3), Some(1));
    }

    #[test]
    fn zero_divisor_is_reported() {
        assert_eq!(AluOp::Div.eval(1, 0), None);
        assert_eq!(AluOp::Mod.eval(1, 0), None);
        assert_eq!(AluOp::Rem.eval(1, 0), None);
    }

    #[test]
    fn mod_and_rem_agree_with_division_identities() {
        for a in -20i64..=20 {
            for b in [-7i64, -3, -1, 1, 2, 5] {
                // floored mod satisfies a = b * floor(a/b) + mod
                let m = AluOp::Mod.eval(a, b).unwrap();
                let fdiv = if (a % b != 0) && ((a < 0) != (b < 0)) {
                    a / b - 1
                } else {
                    a / b
                };
                assert_eq!(a, b * fdiv + m, "a={a} b={b}");
                // floored mod has the divisor's sign (or is zero)
                assert!(m == 0 || (m < 0) == (b < 0), "a={a} b={b} m={m}");
                // truncated rem satisfies a = b * trunc(a/b) + rem
                let r = AluOp::Rem.eval(a, b).unwrap();
                assert_eq!(a, b * (a / b) + r, "a={a} b={b}");
            }
        }
    }
}
