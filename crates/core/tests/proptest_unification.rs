//! Property tests of the run-time unification machinery, via the whole
//! pipeline: random ground terms are unified by the compiled `=/2`
//! and compared against structural equality computed in Rust.
//!
//! Term generation uses a seeded xorshift PRNG (no external crates),
//! so every run exercises the same deterministic case set.

use symbol_core::pipeline::{Compiled, PipelineError};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A printable random ground term.
#[derive(Clone, Debug, PartialEq, Eq)]
enum G {
    Int(i64),
    Atom(&'static str),
    Struct(&'static str, Vec<G>),
    List(Vec<G>),
}

impl G {
    /// A random term of at most `depth` nested levels.
    fn random(rng: &mut Rng, depth: usize) -> G {
        let leaf = depth == 0 || rng.below(2) == 0;
        if leaf {
            if rng.below(2) == 0 {
                G::Int(rng.below(198) as i64 - 99)
            } else {
                G::Atom(["a", "b", "foo"][rng.below(3) as usize])
            }
        } else if rng.below(2) == 0 {
            let f = ["f", "g", "h"][rng.below(3) as usize];
            let n = 1 + rng.below(2) as usize;
            G::Struct(f, (0..n).map(|_| G::random(rng, depth - 1)).collect())
        } else {
            let n = rng.below(3) as usize;
            G::List((0..n).map(|_| G::random(rng, depth - 1)).collect())
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            G::Int(i) => out.push_str(&i.to_string()),
            G::Atom(a) => out.push_str(a),
            G::Struct(f, args) => {
                out.push_str(f);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    a.render(out);
                }
                out.push(')');
            }
            G::List(items) => {
                out.push('[');
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    a.render(out);
                }
                out.push(']');
            }
        }
    }

    fn text(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

fn runs(src: &str) -> bool {
    let c = Compiled::from_source(src).expect("compiles");
    match c.run_sequential() {
        Ok(_) => true,
        Err(PipelineError::WrongAnswer) => false,
        Err(e) => panic!("pipeline error: {e}"),
    }
}

#[test]
fn ground_unification_agrees_with_equality() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    for _ in 0..48 {
        let a = G::random(&mut rng, 3);
        let b = G::random(&mut rng, 3);
        let src = format!("main :- {} = {}.", a.text(), b.text());
        assert_eq!(runs(&src), a == b, "{src}");
    }
}

#[test]
fn unification_is_reflexive() {
    let mut rng = Rng(0x0dd0_2bad_5eed_cafe);
    for _ in 0..48 {
        let a = G::random(&mut rng, 3);
        let src = format!("main :- {} = {}.", a.text(), a.text());
        assert!(runs(&src), "{src}");
    }
}

#[test]
fn struct_eq_agrees_with_unification_on_ground_terms() {
    let mut rng = Rng(0xfeed_face_d00d_2bed);
    for _ in 0..48 {
        let a = G::random(&mut rng, 3);
        let b = G::random(&mut rng, 3);
        let eq = format!("main :- {} == {}.", a.text(), b.text());
        assert_eq!(runs(&eq), a == b, "{eq}");
        let ne = format!("main :- {} \\== {}.", a.text(), b.text());
        assert_eq!(runs(&ne), a != b, "{ne}");
    }
}

#[test]
fn variable_binds_to_any_ground_term() {
    let mut rng = Rng(0xabad_1dea_0b5e_55ed);
    for _ in 0..48 {
        let a = G::random(&mut rng, 3);
        let src = format!("main :- X = {}, X == {}.", a.text(), a.text());
        assert!(runs(&src), "{src}");
    }
}

#[test]
fn unification_through_a_call_round_trips() {
    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    for _ in 0..48 {
        let a = G::random(&mut rng, 3);
        let src = format!(
            "main :- id({}, Y), Y == {}.
             id(X, X).",
            a.text(),
            a.text()
        );
        assert!(runs(&src), "{src}");
    }
}
