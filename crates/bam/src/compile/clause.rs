//! Single-clause compilation.
//!
//! Head unification is compiled to explicit dereference / branch /
//! load / bind sequences with separate read- and write-mode paths
//! (BAM-style specialized unification); bodies become put sequences and
//! calls with last-call optimization.

use std::collections::HashSet;

use symbol_prolog::{symbols::wk, Clause, PredId, SymbolTable, Term};

use crate::error::CompileError;
use crate::instr::{BamInstr, BamLabel, Const, Functor, Operand, Slot, TypeTest};
use crate::vars::{analyze, is_builtin, VarInfo};

use super::arith;

/// Pseudo-label denoting the global backtracking routine.
pub const FAIL: BamLabel = BamLabel(u32::MAX);

/// State for compiling one clause of a predicate.
#[derive(Debug)]
pub struct ClauseCompiler<'a> {
    symbols: &'a SymbolTable,
    clause: &'a Clause,
    info: VarInfo,
    code: Vec<BamInstr>,
    seen: HashSet<usize>,
    next_temp: usize,
    labels: &'a mut u32,
    /// Predicates called by this clause (for later definedness checks).
    pub called: Vec<PredId>,
}

impl<'a> ClauseCompiler<'a> {
    /// Creates a compiler for `clause`. `temp_base` reserves lower
    /// temporary indices for the predicate's indexing code; `labels` is
    /// the predicate-wide label counter.
    pub fn new(
        clause: &'a Clause,
        symbols: &'a SymbolTable,
        temp_base: usize,
        labels: &'a mut u32,
    ) -> Self {
        let info = analyze(clause, symbols, temp_base);
        // Scratch temps go above the variable temps.
        let next_temp = temp_base + clause.num_vars();
        ClauseCompiler {
            symbols,
            clause,
            info,
            code: Vec::new(),
            seen: HashSet::new(),
            next_temp,
            labels,
            called: Vec::new(),
        }
    }

    /// Emits one instruction (also used by the arithmetic helper).
    pub fn emit(&mut self, i: BamInstr) {
        self.code.push(i);
    }

    /// Allocates a fresh scratch temporary.
    pub fn fresh_temp(&mut self) -> Slot {
        let t = Slot::Temp(self.next_temp);
        self.next_temp += 1;
        t
    }

    fn fresh_label(&mut self) -> BamLabel {
        let l = BamLabel(*self.labels);
        *self.labels += 1;
        l
    }

    /// Slot holding the current value of variable `v`, materializing a
    /// fresh heap variable on first occurrence.
    pub fn var_value_slot(&mut self, v: usize) -> Slot {
        if self.seen.insert(v) {
            let dst = self.info.slot(v);
            self.emit(BamInstr::PushFresh { dst });
        }
        self.info.slot(v)
    }

    /// Compiles the whole clause body of code (head + body + return).
    /// Returns the code, the called predicates, and the first unused
    /// temporary index (so the next clause can continue numbering).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from unsupported goals.
    pub fn compile(mut self) -> Result<(Vec<BamInstr>, Vec<PredId>, usize), CompileError> {
        let needs_env = self.info.needs_env();
        if needs_env {
            self.emit(BamInstr::Allocate(self.info.env_size()));
        }
        if let Some(cs) = self.info.cut_slot() {
            self.emit(BamInstr::SaveCutBarrier(Slot::Perm(cs)));
        }

        // Head unification, argument by argument.
        if let Term::Struct(_, args) = &self.clause.head {
            let args = args.clone();
            for (i, t) in args.iter().enumerate() {
                self.get(t, Slot::Arg(i));
            }
        }

        // Body.
        let body = self.clause.body.clone();
        let mut seen_call = false;
        let mut ended_with_execute = false;
        for (i, goal) in body.iter().enumerate() {
            let last = i + 1 == body.len();
            if is_builtin(goal, self.symbols) {
                self.compile_builtin(goal, seen_call)?;
            } else {
                let (name, arity) =
                    goal.functor()
                        .ok_or_else(|| CompileError::UnsupportedGoal {
                            goal: format!("{}", goal.display(self.symbols)),
                        })?;
                let pred = PredId::new(name, arity);
                self.called.push(pred);
                let goal_args: Vec<Term> = match goal {
                    Term::Struct(_, a) => a.clone(),
                    _ => Vec::new(),
                };
                for (k, t) in goal_args.iter().enumerate() {
                    self.put(t, k, last && needs_env);
                }
                if last {
                    if needs_env {
                        self.emit(BamInstr::Deallocate);
                    }
                    self.emit(BamInstr::Execute(pred));
                    ended_with_execute = true;
                } else {
                    self.emit(BamInstr::Call(pred));
                    seen_call = true;
                }
            }
        }

        if !ended_with_execute {
            if needs_env {
                self.emit(BamInstr::Deallocate);
            }
            self.emit(BamInstr::Proceed);
        }
        let next_temp = self.next_temp;
        Ok((self.code, self.called, next_temp))
    }

    // ---------------- head unification ----------------

    /// Compiles unification of head subterm `t` against the value in
    /// `src` (specialized read/write expansion).
    fn get(&mut self, t: &Term, src: Slot) {
        match t {
            Term::Var(v) => {
                if self.seen.insert(*v) {
                    let dst = self.info.slot(*v);
                    self.emit(BamInstr::Move {
                        src: Operand::Slot(src),
                        dst,
                    });
                } else {
                    let a = self.info.slot(*v);
                    self.emit(BamInstr::GeneralUnify { a, b: src });
                }
            }
            Term::Int(i) => self.get_const(Const::Int(*i), src),
            Term::Atom(a) => self.get_const(Const::Atom(*a), src),
            Term::Struct(f, args) if *f == wk::DOT && args.len() == 2 => {
                let d = self.fresh_temp();
                self.emit(BamInstr::Deref { src, dst: d });
                let lw = self.fresh_label();
                let lend = self.fresh_label();
                self.emit(BamInstr::BranchVar {
                    slot: d,
                    target: lw,
                });
                self.emit(BamInstr::BranchNotTag {
                    slot: d,
                    tag: crate::instr::TagClass::Lst,
                    target: FAIL,
                });
                // Read mode: load car and cdr, then unify recursively.
                let hs = self.fresh_temp();
                let ts = self.fresh_temp();
                self.emit(BamInstr::LoadArg {
                    base: d,
                    idx: 0,
                    dst: hs,
                });
                self.emit(BamInstr::LoadArg {
                    base: d,
                    idx: 1,
                    dst: ts,
                });
                let seen_before = self.seen.clone();
                self.get(&args[0], hs);
                self.get(&args[1], ts);
                self.emit(BamInstr::Jump(lend));
                // Write mode: build the whole list and bind. Sub-terms
                // are built before `NewList` captures the heap top, so
                // the two cell words stay contiguous.
                self.emit(BamInstr::Label(lw));
                self.seen = seen_before;
                let oh = self.build(&args[0]);
                let ot = self.build(&args[1]);
                let bt = self.fresh_temp();
                self.emit(BamInstr::NewList { dst: bt });
                self.push_operand(oh);
                self.push_operand(ot);
                self.emit(BamInstr::BindSlot { var: d, value: bt });
                self.emit(BamInstr::Label(lend));
            }
            Term::Struct(f, args) => {
                let fct = Functor::new(*f, args.len());
                let d = self.fresh_temp();
                self.emit(BamInstr::Deref { src, dst: d });
                let lw = self.fresh_label();
                let lend = self.fresh_label();
                self.emit(BamInstr::BranchVar {
                    slot: d,
                    target: lw,
                });
                self.emit(BamInstr::BranchNotTag {
                    slot: d,
                    tag: crate::instr::TagClass::Str,
                    target: FAIL,
                });
                self.emit(BamInstr::BranchNotFunctor {
                    slot: d,
                    f: fct,
                    target: FAIL,
                });
                let mut arg_slots = Vec::new();
                for i in 0..args.len() {
                    let s = self.fresh_temp();
                    self.emit(BamInstr::LoadArg {
                        base: d,
                        idx: i + 1,
                        dst: s,
                    });
                    arg_slots.push(s);
                }
                let seen_before = self.seen.clone();
                for (a, s) in args.iter().zip(&arg_slots) {
                    self.get(a, *s);
                }
                self.emit(BamInstr::Jump(lend));
                self.emit(BamInstr::Label(lw));
                self.seen = seen_before;
                let ops: Vec<Operand> = args.iter().map(|a| self.build(a)).collect();
                let bt = self.fresh_temp();
                self.emit(BamInstr::NewStruct { dst: bt, f: fct });
                for o in ops {
                    self.push_operand(o);
                }
                self.emit(BamInstr::BindSlot { var: d, value: bt });
                self.emit(BamInstr::Label(lend));
            }
        }
    }

    fn get_const(&mut self, c: Const, src: Slot) {
        let d = self.fresh_temp();
        self.emit(BamInstr::Deref { src, dst: d });
        let lw = self.fresh_label();
        let lend = self.fresh_label();
        self.emit(BamInstr::BranchVar {
            slot: d,
            target: lw,
        });
        self.emit(BamInstr::BranchNotConst {
            slot: d,
            c,
            target: FAIL,
        });
        self.emit(BamInstr::Jump(lend));
        self.emit(BamInstr::Label(lw));
        self.emit(BamInstr::BindConst { var: d, c });
        self.emit(BamInstr::Label(lend));
    }

    // ---------------- term building (write mode / puts) ----------------

    /// Emits code constructing `t` on the heap bottom-up; returns the
    /// operand holding (a reference to) the built term.
    fn build(&mut self, t: &Term) -> Operand {
        match t {
            Term::Int(i) => Operand::Const(Const::Int(*i)),
            Term::Atom(a) => Operand::Const(Const::Atom(*a)),
            Term::Var(v) => {
                let s = self.var_value_slot(*v);
                Operand::Slot(s)
            }
            Term::Struct(f, args) if *f == wk::DOT && args.len() == 2 => {
                let oh = self.build(&args[0]);
                let ot = self.build(&args[1]);
                let d = self.fresh_temp();
                self.emit(BamInstr::NewList { dst: d });
                self.push_operand(oh);
                self.push_operand(ot);
                Operand::Slot(d)
            }
            Term::Struct(f, args) => {
                let ops: Vec<Operand> = args.iter().map(|a| self.build(a)).collect();
                let d = self.fresh_temp();
                self.emit(BamInstr::NewStruct {
                    dst: d,
                    f: Functor::new(*f, args.len()),
                });
                for o in ops {
                    self.push_operand(o);
                }
                Operand::Slot(d)
            }
        }
    }

    fn push_operand(&mut self, o: Operand) {
        match o {
            Operand::Const(c) => self.emit(BamInstr::PushConst { c }),
            Operand::Slot(src) => self.emit(BamInstr::PushValue { src }),
        }
    }

    /// Compiles placing goal argument `t` into `Arg(k)`.
    /// `unsafe_context` is true for the final call of a clause with an
    /// environment (permanent variables must be globalized then).
    fn put(&mut self, t: &Term, k: usize, unsafe_context: bool) {
        match t {
            Term::Var(v) => {
                let s = self.var_value_slot(*v);
                if unsafe_context && matches!(s, Slot::Perm(_)) {
                    self.emit(BamInstr::MoveUnsafe {
                        src: s,
                        dst: Slot::Arg(k),
                    });
                } else {
                    self.emit(BamInstr::Move {
                        src: Operand::Slot(s),
                        dst: Slot::Arg(k),
                    });
                }
            }
            other => {
                let o = self.build(other);
                self.emit(BamInstr::Move {
                    src: o,
                    dst: Slot::Arg(k),
                });
            }
        }
    }

    /// Materializes an operand into a slot.
    fn force_slot(&mut self, o: Operand) -> Slot {
        match o {
            Operand::Slot(s) => s,
            Operand::Const(c) => {
                let d = self.fresh_temp();
                self.emit(BamInstr::Move {
                    src: Operand::Const(c),
                    dst: d,
                });
                d
            }
        }
    }

    // ---------------- builtins ----------------

    fn compile_builtin(&mut self, goal: &Term, seen_call: bool) -> Result<(), CompileError> {
        let (name_atom, arity) = goal.functor().expect("builtin goals are callable");
        let name = self.symbols.name(name_atom).to_owned();
        let args: Vec<Term> = match goal {
            Term::Struct(_, a) => a.clone(),
            _ => Vec::new(),
        };
        match (name.as_str(), arity) {
            ("true", 0) => {}
            ("fail", 0) => self.emit(BamInstr::Fail),
            ("!", 0) => {
                let barrier = if seen_call {
                    self.info.cut_slot().map(Slot::Perm)
                } else {
                    None
                };
                self.emit(BamInstr::Cut(barrier));
            }
            ("halt", 0) => self.emit(BamInstr::Halt { success: true }),
            ("=", 2) => self.compile_unify_goal(&args[0], &args[1]),
            ("is", 2) => {
                let syms = self.symbols;
                let o = arith::eval(self, &args[1], syms)?;
                match &args[0] {
                    Term::Var(v) if !self.seen.contains(v) => {
                        self.seen.insert(*v);
                        let dst = self.info.slot(*v);
                        self.emit(BamInstr::Move { src: o, dst });
                    }
                    lhs => {
                        let l = self.build(lhs);
                        let ls = self.force_slot(l);
                        let rs = self.force_slot(o);
                        self.emit(BamInstr::GeneralUnify { a: ls, b: rs });
                    }
                }
            }
            ("==", 2) | ("\\==", 2) => {
                let a = self.build(&args[0]);
                let b = self.build(&args[1]);
                let a = self.force_slot(a);
                let b = self.force_slot(b);
                self.emit(BamInstr::StructEqBranch {
                    a,
                    b,
                    want_equal: name == "==",
                    target: FAIL,
                });
            }
            ("var", 1) | ("nonvar", 1) | ("atom", 1) | ("integer", 1) | ("atomic", 1) => {
                let test = match name.as_str() {
                    "var" => TypeTest::Var,
                    "nonvar" => TypeTest::NonVar,
                    "atom" => TypeTest::Atom,
                    "integer" => TypeTest::Integer,
                    _ => TypeTest::Atomic,
                };
                let o = self.build(&args[0]);
                let s = self.force_slot(o);
                let d = self.fresh_temp();
                self.emit(BamInstr::Deref { src: s, dst: d });
                self.emit(BamInstr::TypeTestBranch {
                    slot: d,
                    test,
                    target: FAIL,
                });
            }
            (cmp_name, 2) if arith::comparison(cmp_name).is_some() => {
                let cmp = arith::comparison(cmp_name).expect("guarded");
                let syms = self.symbols;
                let a = arith::eval(self, &args[0], syms)?;
                let b = arith::eval(self, &args[1], syms)?;
                self.emit(BamInstr::BranchCmpFalse {
                    cmp,
                    a,
                    b,
                    target: FAIL,
                });
            }
            _ => {
                return Err(CompileError::UnsupportedGoal {
                    goal: format!("{}", goal.display(self.symbols)),
                })
            }
        }
        Ok(())
    }

    fn compile_unify_goal(&mut self, a: &Term, b: &Term) {
        // `Var = t` with Var unseen and not occurring in t: plain move.
        match (a, b) {
            (Term::Var(v), t) | (t, Term::Var(v)) if !self.seen.contains(v) && !occurs(*v, t) => {
                let o = self.build(t);
                self.seen.insert(*v);
                let dst = self.info.slot(*v);
                self.emit(BamInstr::Move { src: o, dst });
            }
            _ => {
                let oa = self.build(a);
                let ob = self.build(b);
                let sa = self.force_slot(oa);
                let sb = self.force_slot(ob);
                self.emit(BamInstr::GeneralUnify { a: sa, b: sb });
            }
        }
    }
}

fn occurs(v: usize, t: &Term) -> bool {
    match t {
        Term::Var(w) => *w == v,
        Term::Int(_) | Term::Atom(_) => false,
        Term::Struct(_, args) => args.iter().any(|a| occurs(v, a)),
    }
}
