//! The on-disk compiled-artifact container.
//!
//! An artifact is a single file holding everything the serving tier
//! needs to answer queries without re-running the front end: an
//! *emulator image* (the IntCode, its pre-decoded micro-op form and
//! the memory layout it was generated for), a *VLIW image* (the
//! pre-decoded issue records of a scheduled program, machine
//! configuration included), or a *fused image* (the profile-guided
//! superinstruction tier: the fused [`DecodedProgram`] plus the hash
//! of the execution profile it specialized against and the fusion
//! report).
//!
//! ## Container layout
//!
//! All integers are little-endian, written with the same zero-dep
//! codec ([`symbol_intcode::wire`]) the payloads use:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SYMBART\0"
//! 8       4     format version (u32) = FORMAT_VERSION
//! 12      8     source hash   (FNV-1a 64 of the Prolog source text)
//! 20      8     config hash   (FNV-1a 64 of the canonical config bytes)
//! 28      1     payload kind  (0 = emulator, 1 = VLIW, 2 = fused)
//! 29      8     payload length in bytes (u64)
//! 37      n     payload (length-prefixed sections, see below)
//! 37+n    8     checksum: FNV-1a 64 over bytes [0, 37+n)
//! ```
//!
//! The emulator payload is three length-prefixed sections — IntCode
//! wire bytes, decoded-program wire bytes, then the five [`Layout`]
//! sizes as `u64`s. The VLIW payload is one section of
//! [`DecodedVliw`] wire bytes (which embed the machine config). The
//! fused payload is one section of fused decoded-program wire bytes,
//! then the profile hash (`u64`) and the serialized
//! [`FusionReport`]; its cache key folds the profile hash into the
//! config hash, so a changed profile is a different artifact — stale
//! specializations can never be served.
//!
//! Decoding never panics: every failure mode — wrong magic, unknown
//! version, truncation, checksum mismatch, malformed payload — comes
//! back as a [`WireError`], and the cache answers all of them the same
//! way (drop the entry, recompile).

use symbol_intcode::decode::DecodedProgram;
use symbol_intcode::fuse::FusionReport;
use symbol_intcode::program::IciProgram;
use symbol_intcode::wire::{fnv1a64, Reader, WireError, Writer};
use symbol_intcode::Layout;
use symbol_vliw::wire as vliw_wire;
use symbol_vliw::{DecodedVliw, MachineConfig};

/// First eight bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"SYMBART\0";

/// Container format version this build reads and writes. Bump on any
/// layout change; old versions are rejected (and recompiled), never
/// migrated.
pub const FORMAT_VERSION: u32 = 1;

/// What an artifact holds, as stored in the kind byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PayloadKind {
    /// IntCode + decoded program + layout: the sequential-emulation
    /// image [`symbol_core::pipeline::Compiled::from_artifact`] accepts.
    Emulator,
    /// Pre-decoded VLIW issue records (machine config embedded).
    Vliw,
    /// The profile-guided fused tier of an emulator image (the warm
    /// path of the two-tier serving loop).
    Fused,
}

impl PayloadKind {
    fn to_byte(self) -> u8 {
        match self {
            PayloadKind::Emulator => 0,
            PayloadKind::Vliw => 1,
            PayloadKind::Fused => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(PayloadKind::Emulator),
            1 => Ok(PayloadKind::Vliw),
            2 => Ok(PayloadKind::Fused),
            v => Err(WireError::BadTag {
                what: "payload kind",
                value: u32::from(v),
            }),
        }
    }

    /// Short name used in file names and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::Emulator => "emu",
            PayloadKind::Vliw => "vliw",
            PayloadKind::Fused => "fused",
        }
    }
}

/// The cache key of an artifact: what was compiled and under which
/// configuration. Two compilations agree on both hashes exactly when
/// the artifact of one can serve the other.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// FNV-1a 64 of the Prolog source text.
    pub source_hash: u64,
    /// FNV-1a 64 of the canonical encoding of everything else that
    /// shapes the artifact (layout; plus machine config for VLIW).
    pub config_hash: u64,
}

fn layout_bytes(w: &mut Writer, layout: &Layout) {
    w.u64(layout.heap_size as u64);
    w.u64(layout.env_size as u64);
    w.u64(layout.cp_size as u64);
    w.u64(layout.trail_size as u64);
    w.u64(layout.pdl_size as u64);
}

fn layout_from(r: &mut Reader<'_>) -> Result<Layout, WireError> {
    let field = |r: &mut Reader<'_>| -> Result<usize, WireError> {
        usize::try_from(r.u64()?).map_err(|_| WireError::BadValue {
            what: "layout size",
        })
    };
    Ok(Layout {
        heap_size: field(r)?,
        env_size: field(r)?,
        cp_size: field(r)?,
        trail_size: field(r)?,
        pdl_size: field(r)?,
    })
}

impl ArtifactKey {
    /// Key of the emulator image of `source` under `layout`.
    pub fn emulator(source: &str, layout: &Layout) -> Self {
        let mut w = Writer::new();
        layout_bytes(&mut w, layout);
        ArtifactKey {
            source_hash: fnv1a64(source.as_bytes()),
            config_hash: fnv1a64(&w.into_bytes()),
        }
    }

    /// Key of the VLIW image of `source` scheduled for `machine` under
    /// `layout`.
    pub fn vliw(source: &str, layout: &Layout, machine: &MachineConfig) -> Self {
        let mut w = Writer::new();
        layout_bytes(&mut w, layout);
        vliw_wire::put_machine(&mut w, machine);
        ArtifactKey {
            source_hash: fnv1a64(source.as_bytes()),
            config_hash: fnv1a64(&w.into_bytes()),
        }
    }

    /// Key of the fused second-tier image of `source` under `layout`,
    /// specialized against the profile hashed as `profile_hash` and
    /// fused under the configuration hashed as `fuse_salt`
    /// ([`symbol_intcode::FuseConfig::cache_salt`]). Both are folded
    /// into the config hash: a new profile (new source behavior,
    /// different layout, changed predictor) or a retuned fusion
    /// threshold yields a new key, which is exactly the invalidation
    /// the fused tier needs — a cache seeded under old thresholds is
    /// never served after the pass changes.
    pub fn fused(source: &str, layout: &Layout, profile_hash: u64, fuse_salt: u64) -> Self {
        let mut w = Writer::new();
        layout_bytes(&mut w, layout);
        w.u64(profile_hash);
        w.u64(fuse_salt);
        ArtifactKey {
            source_hash: fnv1a64(source.as_bytes()),
            config_hash: fnv1a64(&w.into_bytes()),
        }
    }

    /// Canonical file name of this key's artifact of the given kind.
    pub fn file_name(&self, kind: PayloadKind) -> String {
        format!(
            "{:016x}-{:016x}-{}.art",
            self.source_hash,
            self.config_hash,
            kind.name()
        )
    }
}

/// A decoded artifact payload (owned).
#[derive(Debug)]
pub enum Payload {
    /// Emulator image.
    Emulator {
        /// Executable IntCode.
        ici: IciProgram,
        /// Its pre-decoded micro-op form.
        decoded: DecodedProgram,
        /// Memory layout the code was generated for.
        layout: Layout,
    },
    /// VLIW image.
    Vliw {
        /// Pre-decoded issue records.
        decoded: DecodedVliw,
    },
    /// Fused second-tier image.
    Fused {
        /// The fused decoded program.
        fused: DecodedProgram,
        /// Hash of the execution profile the fusion consumed.
        profile_hash: u64,
        /// What the fusion pass did (for metrics on attach).
        report: FusionReport,
    },
}

impl Payload {
    /// Which kind byte this payload serializes under.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Emulator { .. } => PayloadKind::Emulator,
            Payload::Vliw { .. } => PayloadKind::Vliw,
            Payload::Fused { .. } => PayloadKind::Fused,
        }
    }
}

/// A fully decoded artifact: its key plus the payload.
#[derive(Debug)]
pub struct Artifact {
    /// The cache key stored in the header.
    pub key: ArtifactKey,
    /// The decoded payload.
    pub payload: Payload,
}

fn put_section(w: &mut Writer, bytes: &[u8]) {
    w.u64(bytes.len() as u64);
    w.bytes(bytes);
}

fn get_section<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], WireError> {
    let len = r.u64()?;
    let len = usize::try_from(len).map_err(|_| WireError::BadValue {
        what: "section length",
    })?;
    r.take(len)
}

fn encode(key: &ArtifactKey, kind: PayloadKind, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(key.source_hash);
    w.u64(key.config_hash);
    w.u8(kind.to_byte());
    put_section(&mut w, payload);
    let mut bytes = w.into_bytes();
    let checksum = fnv1a64(&bytes);
    let mut w = Writer::new();
    w.u64(checksum);
    bytes.extend_from_slice(&w.into_bytes());
    bytes
}

/// Encodes an emulator image.
pub fn encode_emulator(
    key: &ArtifactKey,
    ici: &IciProgram,
    decoded: &DecodedProgram,
    layout: &Layout,
) -> Vec<u8> {
    let mut w = Writer::new();
    put_section(&mut w, &ici.to_wire_bytes());
    put_section(&mut w, &decoded.to_wire_bytes());
    layout_bytes(&mut w, layout);
    encode(key, PayloadKind::Emulator, &w.into_bytes())
}

/// Encodes a VLIW image.
pub fn encode_vliw(key: &ArtifactKey, decoded: &DecodedVliw) -> Vec<u8> {
    encode(key, PayloadKind::Vliw, &decoded.to_wire_bytes())
}

/// Encodes a fused second-tier image.
pub fn encode_fused(
    key: &ArtifactKey,
    fused: &DecodedProgram,
    profile_hash: u64,
    report: &FusionReport,
) -> Vec<u8> {
    let mut w = Writer::new();
    put_section(&mut w, &fused.to_wire_bytes());
    w.u64(profile_hash);
    report.encode_into(&mut w);
    encode(key, PayloadKind::Fused, &w.into_bytes())
}

/// Decodes an artifact file.
///
/// # Errors
///
/// [`WireError::BadMagic`] when the file does not start with [`MAGIC`];
/// [`WireError::BadVersion`] for any other format version;
/// [`WireError::Corrupt`] when the trailing checksum does not match
/// (which also catches every short read or truncation past the
/// header); any payload decoding error otherwise. Never panics.
pub fn decode(bytes: &[u8]) -> Result<Artifact, WireError> {
    // Magic and version first, so "not an artifact at all" and "from a
    // different build" are distinguishable from bit rot.
    let mut r = Reader::new(bytes);
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(WireError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    // Integrity: the last 8 bytes checksum everything before them.
    if bytes.len() < 8 {
        return Err(WireError::Truncated {
            need: 8,
            have: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut tr = Reader::new(tail);
    let stored = tr.u64()?;
    if fnv1a64(body) != stored {
        return Err(WireError::Corrupt {
            what: "artifact checksum",
        });
    }
    // Re-read the body now that it is known intact.
    let mut r = Reader::new(body);
    let _ = r.take(MAGIC.len())?;
    let _ = r.u32()?;
    let key = ArtifactKey {
        source_hash: r.u64()?,
        config_hash: r.u64()?,
    };
    let kind = PayloadKind::from_byte(r.u8()?)?;
    let payload = get_section(&mut r)?;
    r.finish()?;
    let mut pr = Reader::new(payload);
    let payload = match kind {
        PayloadKind::Emulator => {
            let ici = IciProgram::from_wire_bytes(get_section(&mut pr)?)?;
            let decoded = DecodedProgram::from_wire_bytes(get_section(&mut pr)?)?;
            let layout = layout_from(&mut pr)?;
            if decoded.len() != ici.len() {
                return Err(WireError::Corrupt {
                    what: "decoded/intcode consistency",
                });
            }
            Payload::Emulator {
                ici,
                decoded,
                layout,
            }
        }
        // The container's payload length already delimits the single
        // blob; no inner section.
        PayloadKind::Vliw => Payload::Vliw {
            decoded: DecodedVliw::from_wire_bytes(pr.take(pr.remaining())?)?,
        },
        PayloadKind::Fused => {
            let fused = DecodedProgram::from_wire_bytes(get_section(&mut pr)?)?;
            let profile_hash = pr.u64()?;
            let report = FusionReport::decode_from(&mut pr)?;
            Payload::Fused {
                fused,
                profile_hash,
                report,
            }
        }
    };
    pr.finish()?;
    Ok(Artifact { key, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_core::pipeline::Compiled;

    const SRC: &str = "main :- X is 6 * 7, X = 42.";

    fn emulator_bytes() -> (ArtifactKey, Vec<u8>) {
        let c = Compiled::from_source(SRC).expect("compiles");
        let key = ArtifactKey::emulator(SRC, &c.layout);
        let bytes = encode_emulator(&key, &c.ici, &c.decoded, &c.layout);
        (key, bytes)
    }

    #[test]
    fn emulator_image_round_trips() {
        let (key, bytes) = emulator_bytes();
        let art = decode(&bytes).expect("decodes");
        assert_eq!(art.key, key);
        let Payload::Emulator {
            ici,
            decoded,
            layout,
        } = art.payload
        else {
            panic!("wrong payload kind");
        };
        // Re-encoding the decoded parts reproduces the file bit for bit.
        assert_eq!(encode_emulator(&key, &ici, &decoded, &layout), bytes);
    }

    #[test]
    fn vliw_image_round_trips() {
        use symbol_compactor::{try_compact, CompactMode, TracePolicy};
        let c = Compiled::from_source(SRC).expect("compiles");
        let run = c.run_sequential().expect("runs");
        let machine = MachineConfig::units(3);
        let compacted = try_compact(
            &c.ici,
            &run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        )
        .expect("schedules");
        let decoded = DecodedVliw::new(&compacted.program, machine);
        let key = ArtifactKey::vliw(SRC, &c.layout, &machine);
        let bytes = encode_vliw(&key, &decoded);
        let art = decode(&bytes).expect("decodes");
        assert_eq!(art.key, key);
        let Payload::Vliw { decoded: d2 } = art.payload else {
            panic!("wrong payload kind");
        };
        assert_eq!(encode_vliw(&key, &d2), bytes);
    }

    #[test]
    fn fused_image_round_trips() {
        let src = "main :- count(20). count(0). count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).expect("compiles");
        c.build_fused_tier().expect("profiles and fuses");
        let tier = c.fused.as_ref().unwrap();
        let key = ArtifactKey::fused(
            src,
            &c.layout,
            tier.profile_hash,
            symbol_intcode::FuseConfig::default().cache_salt(),
        );
        let bytes = encode_fused(&key, &tier.program, tier.profile_hash, &tier.report);
        let art = decode(&bytes).expect("decodes");
        assert_eq!(art.key, key);
        let Payload::Fused {
            fused,
            profile_hash,
            report,
        } = art.payload
        else {
            panic!("wrong payload kind");
        };
        assert_eq!(profile_hash, tier.profile_hash);
        assert_eq!(report, tier.report);
        assert_eq!(encode_fused(&key, &fused, profile_hash, &report), bytes);
    }

    #[test]
    fn fused_key_separates_profiles_and_fuse_configs() {
        let layout = Layout::default();
        let salt = symbol_intcode::FuseConfig::default().cache_salt();
        let a = ArtifactKey::fused("main :- 1 = 1.", &layout, 1, salt);
        let b = ArtifactKey::fused("main :- 1 = 1.", &layout, 2, salt);
        assert_eq!(a.source_hash, b.source_hash);
        assert_ne!(a.config_hash, b.config_hash, "profile hash is in the key");
        let emu = ArtifactKey::emulator("main :- 1 = 1.", &layout);
        assert_ne!(a.config_hash, emu.config_hash);
        let retuned = symbol_intcode::FuseConfig {
            min_pair_permille: 500,
            ..symbol_intcode::FuseConfig::default()
        };
        let c = ArtifactKey::fused("main :- 1 = 1.", &layout, 1, retuned.cache_salt());
        assert_ne!(
            a.config_hash, c.config_hash,
            "retuning the fusion pass invalidates cached fused artifacts"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (_, mut bytes) = emulator_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(WireError::BadMagic)));
    }

    #[test]
    fn flipped_version_byte_is_rejected() {
        let (_, mut bytes) = emulator_bytes();
        bytes[8] ^= 0x01; // low byte of the u32 version field
        assert!(matches!(
            decode(&bytes),
            Err(WireError::BadVersion {
                found: _,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let (_, bytes) = emulator_bytes();
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "truncated to {len} bytes");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (_, bytes) = emulator_bytes();
        // The checksum (or magic/version check) catches any single-bit
        // corruption anywhere in the file.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(decode(&b).is_err(), "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn keys_separate_source_and_config() {
        let layout = Layout::default();
        let a = ArtifactKey::emulator("main :- 1 = 1.", &layout);
        let b = ArtifactKey::emulator("main :- 2 = 2.", &layout);
        assert_ne!(a.source_hash, b.source_hash);
        assert_eq!(a.config_hash, b.config_hash);
        let small = Layout {
            heap_size: 1 << 10,
            ..layout
        };
        let c = ArtifactKey::emulator("main :- 1 = 1.", &small);
        assert_eq!(a.source_hash, c.source_hash);
        assert_ne!(a.config_hash, c.config_hash);
        let m3 = ArtifactKey::vliw("main :- 1 = 1.", &layout, &MachineConfig::units(3));
        let m5 = ArtifactKey::vliw("main :- 1 = 1.", &layout, &MachineConfig::units(5));
        assert_ne!(m3.config_hash, m5.config_hash);
    }
}
