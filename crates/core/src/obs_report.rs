//! The observability run report behind the `obs_report` binary.
//!
//! [`collect`] runs the benchmark suite through the fully instrumented
//! experiment driver ([`experiments::measure_suite_obs`]) plus a
//! profiled pass per benchmark (the `PROFILE = true` monomorphizations
//! of both execution engines), and packages every export the report
//! consumes: the human summary table, the per-PC hot-block report, the
//! stable `metrics.json` document, its schema descriptor, and the
//! Chrome Trace Format JSON for Perfetto.
//!
//! The metric schema is pinned by the checked-in `OBS_SCHEMA.json` at
//! the workspace root ([`PINNED_SCHEMA`]); CI fails when a code change
//! adds, removes or relabels a metric without updating the snapshot.

use std::fmt::Write as _;

use symbol_compactor::{try_compact, CompactMode, TracePolicy};
use symbol_intcode::decode::DecodedEmulator;
use symbol_intcode::emu::{ExecConfig, Outcome};
use symbol_intcode::OpClass;
use symbol_obs::{Registry, Snapshot};
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, SimOutcome};

use crate::benchmarks::{self, Benchmark};
use crate::experiments::{self, BenchResult};
use crate::pipeline::{Compiled, PipelineError};

/// The checked-in metric schema snapshot (workspace root
/// `OBS_SCHEMA.json`). Regenerate with `obs_report --print-schema`
/// after intentionally changing the metric set.
pub const PINNED_SCHEMA: &str = include_str!("../../../OBS_SCHEMA.json");

/// How many hot PCs the report keeps per benchmark by default.
pub const DEFAULT_HOT_PCS: usize = 10;

/// Options of one [`collect`] run.
#[derive(Copy, Clone, Debug)]
pub struct ReportOptions {
    /// Benchmarks to run (defaults to the whole suite).
    pub benches: &'static [Benchmark],
    /// Worker threads for the suite fan-out; `0` means
    /// `available_parallelism`.
    pub threads: usize,
    /// Hot PCs kept per benchmark.
    pub hot_pcs: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            benches: benchmarks::ALL,
            threads: 0,
            hot_pcs: DEFAULT_HOT_PCS,
        }
    }
}

/// One hot program counter of a benchmark's profiled run.
#[derive(Clone, Debug)]
pub struct HotPc {
    /// IntCode op index.
    pub pc: usize,
    /// Times the op was executed.
    pub count: u64,
    /// Instruction class of the op (shared [`OpClass`] table).
    pub class: &'static str,
    /// Times the 2-bit predictor missed this op (conditional branches
    /// only; `0` elsewhere).
    pub mispredicts: u64,
}

/// The profiled-engine measurements of one benchmark: per-PC execution
/// profile with branch-predictor misses from the sequential engine,
/// and slot-level occupancy from the 3-unit trace-scheduled VLIW run.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Total executed ops of the sequential run.
    pub steps: u64,
    /// Total 2-bit-predictor misses.
    pub mispredicts: u64,
    /// Misses over dynamically executed conditional branches.
    pub mispredict_rate: Option<f64>,
    /// The hottest PCs, by execution count.
    pub hot: Vec<HotPc>,
    /// Fraction of all executed ops covered by [`BenchProfile::hot`].
    pub hot_coverage: f64,
    /// Cycles of the 3-unit trace-scheduled run.
    pub sim_cycles: u64,
    /// Mean ops per non-bubble cycle on the 3-unit machine.
    pub mean_occupancy: f64,
    /// Per-class slot utilization on the 3-unit machine.
    pub utilization: [f64; OpClass::COUNT],
    /// Fraction of cycles lost to taken-branch bubbles.
    pub bubble_fraction: f64,
}

/// Everything [`collect`] produces.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Full experiment results, in table order.
    pub results: Vec<BenchResult>,
    /// Profiled-engine measurements, in the same order.
    pub profiles: Vec<BenchProfile>,
    /// The structured metric snapshot.
    pub snapshot: Snapshot,
    /// `metrics.json` (stable schema, diffable).
    pub metrics_json: String,
    /// The value-elided schema descriptor of `metrics_json`.
    pub schema_json: String,
    /// Chrome Trace Format JSON (load in Perfetto / `chrome://tracing`).
    pub trace_json: String,
}

/// Runs the instrumented suite and the profiled passes.
///
/// # Errors
///
/// Fails if any benchmark does not compile, run and self-check under
/// every configuration; see [`experiments::measure_all_with`].
pub fn collect(opts: &ReportOptions) -> Result<ObsReport, PipelineError> {
    let obs = Registry::new();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let results = experiments::measure_suite_obs(opts.benches, threads, &obs)?;
    let profiles = opts
        .benches
        .iter()
        .map(|b| profile_bench(b, opts.hot_pcs, &obs))
        .collect::<Result<Vec<_>, _>>()?;
    let snapshot = obs.snapshot();
    Ok(ObsReport {
        results,
        profiles,
        metrics_json: snapshot.to_json(),
        schema_json: snapshot.schema_json(),
        trace_json: obs.chrome_trace_json(),
        snapshot,
    })
}

/// The `PROFILE = true` pass for one benchmark: sequential engine with
/// the per-PC branch predictor, then the 3-unit trace schedule on the
/// profiled VLIW engine.
fn profile_bench(
    bench: &Benchmark,
    hot_pcs: usize,
    obs: &Registry,
) -> Result<BenchProfile, PipelineError> {
    let labels: &[(&str, &str)] = &[("bench", bench.name)];
    let compiled = Compiled::from_source_obs(bench.source, Default::default(), obs, bench.name)?;
    let _span = obs.span("profile", labels);

    let (outcome, stats, steps, prof) = DecodedEmulator::new(&compiled.decoded, &compiled.layout)
        .run_with_profile(&ExecConfig::default());
    if outcome? != Outcome::Success {
        return Err(PipelineError::WrongAnswer);
    }
    let mispredicts = prof.total_mispredicts();
    obs.counter("emulator.mispredicts", labels).add(mispredicts);

    let hot = stats
        .hot_pcs(hot_pcs)
        .into_iter()
        .map(|(pc, count)| HotPc {
            pc,
            count,
            class: compiled.ici.ops()[pc].class().name(),
            mispredicts: prof.mispredict[pc],
        })
        .collect::<Vec<_>>();
    let hot_ops: u64 = hot.iter().map(|h| h.count).sum();
    let hot_coverage = if steps == 0 {
        0.0
    } else {
        hot_ops as f64 / steps as f64
    };

    let machine = MachineConfig::units(3);
    let compacted = try_compact(
        &compiled.ici,
        &stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    )?;
    let decoded = DecodedVliw::new(&compacted.program, machine);
    let (sim, sim_profile) =
        DecodedVliwSim::new(&decoded, &compiled.layout).run_profiled(&SimConfig::default());
    let sim = sim?;
    if sim.outcome != SimOutcome::Success {
        return Err(PipelineError::WrongAnswer);
    }
    obs.counter("sim.bubble_cycles", labels)
        .add(sim_profile.branch_bubble_cycles);

    Ok(BenchProfile {
        name: bench.name,
        steps,
        mispredicts,
        mispredict_rate: prof.mispredict_rate(&compiled.ici, &stats),
        hot,
        hot_coverage,
        sim_cycles: sim.cycles,
        mean_occupancy: sim_profile.mean_occupancy(),
        utilization: sim_profile.class_utilization(&machine, sim.cycles),
        bubble_fraction: if sim.cycles == 0 {
            0.0
        } else {
            sim_profile.branch_bubble_cycles as f64 / sim.cycles as f64
        },
    })
}

impl ObsReport {
    /// The human summary table: one line per benchmark combining the
    /// experiment results with the profiled-engine measurements.
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>8} {:>7} {:>6} {:>7} {:>22} {:>8}",
            "bench", "steps", "mispr%", "hot%", "x3", "occ3", "util3 m/a/v/c", "bubble%"
        );
        for (r, p) in self.results.iter().zip(&self.profiles) {
            let util = p
                .utilization
                .iter()
                .map(|u| format!("{:.0}", u * 100.0))
                .collect::<Vec<_>>()
                .join("/");
            let _ = writeln!(
                out,
                "{:<10} {:>12} {:>8.2} {:>7.1} {:>6.2} {:>7.2} {:>22} {:>8.1}",
                p.name,
                p.steps,
                p.mispredict_rate.unwrap_or(0.0) * 100.0,
                p.hot_coverage * 100.0,
                r.unit_speedup(3),
                p.mean_occupancy,
                util,
                p.bubble_fraction * 100.0,
            );
        }
        out
    }

    /// The hot-block report: the hottest PCs of every benchmark with
    /// their instruction class and predictor misses — the dynamic mix
    /// of these lines is what reconstructs the paper's Figure 2 from
    /// individual ops.
    pub fn hot_block_report(&self) -> String {
        let mut out = String::new();
        for p in &self.profiles {
            let _ = writeln!(
                out,
                "{}: {} ops, {} mispredicts ({} hot PCs cover {:.1}%)",
                p.name,
                p.steps,
                p.mispredicts,
                p.hot.len(),
                p.hot_coverage * 100.0
            );
            for h in &p.hot {
                let _ = writeln!(
                    out,
                    "  pc {:>5}  {:<8} {:>12} execs {:>8} mispredicts",
                    h.pc, h.class, h.count, h.mispredicts
                );
            }
        }
        out
    }

    /// `Some(message)` when the run's metric schema differs from
    /// [`PINNED_SCHEMA`], `None` when they match.
    pub fn schema_drift(&self) -> Option<String> {
        schema_drift_against(&self.schema_json, PINNED_SCHEMA)
    }
}

/// Compares two schema documents line by line and renders the first
/// divergence as a human-readable message.
pub fn schema_drift_against(actual: &str, pinned: &str) -> Option<String> {
    if actual == pinned {
        return None;
    }
    let mut msg = String::from(
        "metrics.json schema drifted from the checked-in OBS_SCHEMA.json \
         (regenerate with `obs_report --print-schema` if intentional):\n",
    );
    let mut actual_lines = actual.lines();
    let mut pinned_lines = pinned.lines();
    loop {
        match (actual_lines.next(), pinned_lines.next()) {
            (Some(a), Some(p)) if a == p => continue,
            (Some(a), Some(p)) => {
                let _ = writeln!(msg, "  expected: {p}");
                let _ = writeln!(msg, "  actual:   {a}");
                break;
            }
            (Some(a), None) => {
                let _ = writeln!(msg, "  extra line: {a}");
                break;
            }
            (None, Some(p)) => {
                let _ = writeln!(msg, "  missing line: {p}");
                break;
            }
            (None, None) => break,
        }
    }
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bench_report() -> ObsReport {
        let opts = ReportOptions {
            benches: &benchmarks::ALL[..1],
            threads: 1,
            hot_pcs: 5,
        };
        collect(&opts).unwrap()
    }

    #[test]
    fn schema_matches_the_checked_in_snapshot() {
        // The schema is value-elided and deduplicated, so a single
        // benchmark exercises the exact metric set of the full suite.
        let r = one_bench_report();
        if let Some(drift) = r.schema_drift() {
            panic!("{drift}");
        }
    }

    #[test]
    fn report_exports_are_populated_and_consistent() {
        let r = one_bench_report();
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.profiles.len(), 1);
        let p = &r.profiles[0];
        assert_eq!(p.name, r.results[0].name);
        assert!(p.steps > 0);
        assert!(!p.hot.is_empty() && p.hot_coverage > 0.0 && p.hot_coverage <= 1.0);
        assert!(p.sim_cycles > 0 && p.mean_occupancy > 0.0);
        assert!(r.metrics_json.contains("\"schema_version\""));
        assert!(r.trace_json.contains("\"traceEvents\""));
        assert!(r.human_table().contains(p.name));
        assert!(r.hot_block_report().contains("execs"));
    }

    #[test]
    fn schema_drift_reports_first_divergence() {
        assert!(schema_drift_against("a\nb\n", "a\nb\n").is_none());
        let msg = schema_drift_against("a\nx\n", "a\nb\n").unwrap();
        assert!(msg.contains("expected: b") && msg.contains("actual:   x"));
        assert!(schema_drift_against("a\n", "a\nb\n")
            .unwrap()
            .contains("missing line"));
    }
}
