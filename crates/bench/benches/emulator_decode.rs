//! Legacy vs pre-decoded vs profile-guided-fused engine timing: runs
//! the **full** benchmark suite through the op-at-a-time
//! [`symbol_intcode::Emulator`], the micro-op
//! [`symbol_intcode::DecodedEmulator`], and the same decoded engine on
//! the fused superinstruction tier built from each benchmark's own
//! execution profile. The two VLIW simulators are timed as a sidecar
//! on the smaller `TIMING_SUBSET`. Writes the per-benchmark numbers to
//! `BENCH_emulator.json` at the workspace root.
//!
//! With `--check`, exits nonzero if:
//!
//! * the decoded emulator's geometric mean speedup over the suite
//!   drops below 1.0× against legacy, or
//! * the fused tier's geometric mean speedup over the decoded engine
//!   drops below [`MIN_FUSED_SPEEDUP`] — the CI `timing-smoke` gate
//!   that keeps the second tier from regressing behind the engine it
//!   is built on (slightly under 1.0 to absorb shared-runner timing
//!   noise; the tier must at minimum break even, not pay for itself),
//!   or
//! * any **single** benchmark's fused speedup drops below
//!   [`MIN_FUSED_PER_BENCH`] — a geomean can hide one benchmark the
//!   profitability threshold mis-tiered behind fifteen that fused
//!   well; the per-benchmark floor cannot (a benchmark that lands
//!   under the floor is confirmed by paired back-to-back re-measures
//!   before failing — see [`remeasure_fused`] — so scheduler hiccups
//!   on a shared runner do not fail the gate), or
//! * running through the observability layer with a
//!   [`Registry::disabled`] costs more than [`MAX_OBS_OVERHEAD`] over
//!   the plain engine (the zero-cost-when-off guarantee of
//!   `symbol-obs`, measured on the same machine in the same process
//!   rather than against a stale cross-machine baseline), or
//! * the same path with an **enabled** flight recorder taking the
//!   serving tier's per-query records costs more than
//!   [`MAX_FLIGHT_OVERHEAD`] — the always-on incident recorder must
//!   stay cheap enough to leave enabled in production.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use symbol_bench::timing::Harness;
use symbol_bench::TIMING_SUBSET;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;
use symbol_intcode::{DecodedEmulator, Emulator, ExecConfig, Layout};
use symbol_obs::{FlightKind, FlightRecorder, Registry};
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, VliwSim};

/// Largest tolerated geomean slowdown of the disabled-observability
/// path over the plain engine (2%).
const MAX_OBS_OVERHEAD: f64 = 0.02;

/// Largest tolerated geomean slowdown with an enabled flight recorder
/// taking the serving tier's per-query records (5%).
const MAX_FLIGHT_OVERHEAD: f64 = 0.05;

/// Smallest tolerated geomean speedup of the fused tier over the
/// decoded engine it rewrites. 1.0 would be the true break-even line;
/// the 2% allowance absorbs wall-clock jitter on shared CI runners.
const MIN_FUSED_SPEEDUP: f64 = 0.98;

/// Smallest tolerated fused speedup on any **individual** benchmark.
/// Looser than the geomean floor (single measurements are noisier
/// than a 16-benchmark mean), but strict enough that a benchmark the
/// profitability threshold should have left un-fused — fusing
/// once-executed pairs whose superinstruction dispatch costs more
/// than it saves — fails the gate instead of hiding in the mean.
const MIN_FUSED_PER_BENCH: f64 = 0.95;

/// One benchmark's legacy/decoded/fused emulator comparison.
struct Row {
    name: &'static str,
    steps: u64,
    legacy: Duration,
    decoded: Duration,
    /// The same decoded run through `run_sequential_obs` with a
    /// disabled registry — the instrumented-but-off product path.
    obs_off: Duration,
    /// The obs-off path with an enabled [`FlightRecorder`] taking the
    /// serving tier's per-query start/end records.
    flight: Duration,
    /// The decoded engine on the fused superinstruction program.
    fused: Duration,
    /// Hot pairs the fusion pass rewrote for this benchmark.
    fused_pairs: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.as_secs_f64() / self.decoded.as_secs_f64()
    }

    /// Fused-tier speedup over the decoded engine it was built from.
    fn fused_speedup(&self) -> f64 {
        self.decoded.as_secs_f64() / self.fused.as_secs_f64()
    }

    /// Fractional cost of the disabled observability layer (0.01 = 1%
    /// slower than the plain engine; negative = within noise).
    fn obs_overhead(&self) -> f64 {
        self.obs_off.as_secs_f64() / self.decoded.as_secs_f64() - 1.0
    }

    /// Fractional cost of the flight-recorder-enabled path over the
    /// plain engine.
    fn flight_overhead(&self) -> f64 {
        self.flight.as_secs_f64() / self.decoded.as_secs_f64() - 1.0
    }

    fn steps_per_sec(&self, mean: Duration) -> f64 {
        self.steps as f64 / mean.as_secs_f64()
    }
}

/// Arenas just big enough for the benchmark suite. Every
/// `Emulator::new` zeroes the whole data memory; with the default
/// ~3.6M-word layout that allocation dominates the per-iteration time
/// for *all* engines and hides the step-loop difference this bench
/// exists to measure.
fn small_layout() -> Layout {
    Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 10,
    }
}

/// `tak` recurses ~64k calls deep and blows through the small arenas;
/// it gets deeper env/cp/trail stacks. Its 5.4M-step run amortises the
/// larger zeroing cost, so the measurement stays a step-loop one.
fn layout_for(name: &str) -> Layout {
    if name == "tak" {
        Layout {
            heap_size: 1 << 17,
            env_size: 1 << 19,
            cp_size: 1 << 18,
            trail_size: 1 << 19,
            pdl_size: 1 << 14,
        }
    } else {
        small_layout()
    }
}

fn measure(h: &mut Harness) -> Vec<Row> {
    let mut rows = Vec::new();
    for b in benchmarks::ALL {
        let name = b.name;
        let mut c =
            Compiled::from_source_with_layout(b.source, layout_for(name)).expect("compiles");
        let run = c.run_sequential().expect("profiling run");
        let cfg = ExecConfig::default();

        h.bench_function(&format!("emulator/legacy/{name}"), |bch| {
            bch.iter(|| Emulator::new(&c.ici, &c.layout).run(&cfg).expect("runs"))
        });
        h.bench_function(&format!("emulator/decoded/{name}"), |bch| {
            bch.iter(|| {
                DecodedEmulator::new(&c.decoded, &c.layout)
                    .run(&cfg)
                    .expect("runs")
            })
        });
        let off = Registry::disabled();
        h.bench_function(&format!("emulator/obs-off/{name}"), |bch| {
            bch.iter(|| c.run_sequential_obs(&off, name).expect("runs"))
        });
        // The serving hot path with the incident recorder live: the
        // same run bracketed by the per-query flight records the
        // query server takes.
        let flight = FlightRecorder::new(1024);
        let mut req = 0u64;
        h.bench_function(&format!("emulator/flight/{name}"), |bch| {
            bch.iter(|| {
                flight.record(FlightKind::QueryStart, req, 0);
                let r = c.run_sequential_obs(&off, name).expect("runs");
                flight.record(FlightKind::QueryOk, req, r.steps);
                req += 1;
                r
            })
        });

        // Second tier: build the fused program from this benchmark's
        // own profile, then time the same engine on it.
        c.build_fused_tier().expect("fuses");
        let tier = c.fused.as_ref().expect("tier installed");
        h.bench_function(&format!("emulator/fused/{name}"), |bch| {
            bch.iter(|| {
                DecodedEmulator::new(&tier.program, &c.layout)
                    .run(&cfg)
                    .expect("runs")
            })
        });

        let n = h.samples().len();
        rows.push(Row {
            name,
            steps: run.steps,
            legacy: h.samples()[n - 5].mean,
            decoded: h.samples()[n - 4].mean,
            obs_off: h.samples()[n - 3].mean,
            flight: h.samples()[n - 2].mean,
            fused: h.samples()[n - 1].mean,
            fused_pairs: tier.report.pairs,
        });

        // VLIW sidecar on the timing subset only: same comparison on
        // the scheduled code (timed, reported in the JSON's sidecar
        // section, but not part of the --check gate — the emulator
        // dominates runtime).
        if !TIMING_SUBSET.contains(&name) {
            continue;
        }
        let machine = MachineConfig::units(3);
        let compacted = compact(
            &c.ici,
            &run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let sim_cfg = SimConfig::default();
        h.bench_function(&format!("vliw/legacy/{name}"), |bch| {
            bch.iter(|| {
                VliwSim::new(&compacted.program, machine, &c.layout)
                    .run(&sim_cfg)
                    .expect("simulates")
            })
        });
        let lowered = DecodedVliw::new(&compacted.program, machine);
        h.bench_function(&format!("vliw/decoded/{name}"), |bch| {
            bch.iter(|| {
                DecodedVliwSim::new(&lowered, &c.layout)
                    .run(&sim_cfg)
                    .expect("simulates")
            })
        });
    }
    rows
}

/// A fresh decoded-vs-fused confirmation of `name`, used before
/// failing the per-benchmark floor gate. The first pass times every
/// engine of every benchmark minutes apart, so a descheduling blip or
/// a frequency step can dent one ratio; on shared runners identical
/// programs measured one-sidedly read 15% apart. Two defences:
///
/// * if the fusion pass selected zero pairs, the fused program is
///   bit-identical to the decoded one and the ratio is 1.0 by
///   construction — no measurement, no noise;
/// * otherwise up to three *paired* rounds, each timing decoded then
///   fused immediately back-to-back, keeping the **best** ratio seen:
///   noise can fake a slow round but never a fast one, so a violation
///   that survives every round is a real regression.
fn remeasure_fused(name: &str) -> f64 {
    let b = benchmarks::ALL
        .iter()
        .find(|b| b.name == name)
        .expect("known benchmark");
    let mut c = Compiled::from_source_with_layout(b.source, layout_for(name)).expect("compiles");
    c.build_fused_tier().expect("fuses");
    let tier = c.fused.as_ref().expect("tier installed");
    if tier.report.pairs == 0 {
        println!("recheck/{name}: 0 pairs fused, program unchanged");
        return 1.0;
    }
    let cfg = ExecConfig::default();
    let mut best = 0.0f64;
    for round in 0..3 {
        let mut h = Harness::new();
        h.bench_function(&format!("recheck{round}/decoded/{name}"), |bch| {
            bch.iter(|| {
                DecodedEmulator::new(&c.decoded, &c.layout)
                    .run(&cfg)
                    .expect("runs")
            })
        });
        h.bench_function(&format!("recheck{round}/fused/{name}"), |bch| {
            bch.iter(|| {
                DecodedEmulator::new(&tier.program, &c.layout)
                    .run(&cfg)
                    .expect("runs")
            })
        });
        let n = h.samples().len();
        best =
            best.max(h.samples()[n - 2].mean.as_secs_f64() / h.samples()[n - 1].mean.as_secs_f64());
        if best >= MIN_FUSED_PER_BENCH {
            break;
        }
    }
    best
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (log_sum, n) = ratios.fold((0.0f64, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    (log_sum / n.max(1) as f64).exp()
}

/// Geomean of the obs-off/plain time ratios, expressed as an overhead
/// fraction.
fn geomean_obs_overhead(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| 1.0 + r.obs_overhead())) - 1.0
}

/// Geomean of the flight-enabled/plain time ratios, expressed as an
/// overhead fraction.
fn geomean_flight_overhead(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| 1.0 + r.flight_overhead())) - 1.0
}

fn write_report(rows: &[Row], h: &Harness, summary: &Summary) {
    let mut out = String::from("{\n  \"emulator\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"steps\": {}, \"legacy_ns\": {}, \"decoded_ns\": {}, \
             \"obs_off_ns\": {}, \"flight_ns\": {}, \"fused_ns\": {}, \
             \"legacy_steps_per_sec\": {:.0}, \
             \"decoded_steps_per_sec\": {:.0}, \"fused_steps_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"fused_speedup\": {:.3}, \"fused_pairs\": {}, \
             \"obs_overhead\": {:.4}, \"flight_overhead\": {:.4}}}{sep}",
            r.name,
            r.steps,
            r.legacy.as_nanos(),
            r.decoded.as_nanos(),
            r.obs_off.as_nanos(),
            r.flight.as_nanos(),
            r.fused.as_nanos(),
            r.steps_per_sec(r.legacy),
            r.steps_per_sec(r.decoded),
            r.steps_per_sec(r.fused),
            r.speedup(),
            r.fused_speedup(),
            r.fused_pairs,
            r.obs_overhead(),
            r.flight_overhead(),
        );
    }
    let _ = write!(out, "  ],\n  \"vliw\": [\n");
    let vliw: Vec<_> = h
        .samples()
        .iter()
        .filter(|s| s.name.starts_with("vliw/"))
        .collect();
    for (i, s) in vliw.iter().enumerate() {
        let sep = if i + 1 == vliw.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mean_ns\": {}}}{sep}",
            s.name,
            s.mean.as_nanos()
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"emulator_geomean_speedup\": {:.3},\n  \
         \"fused_geomean_speedup\": {:.3},\n  \
         \"obs_off_geomean_overhead\": {:.4},\n  \
         \"flight_geomean_overhead\": {:.4}\n}}\n",
        summary.geomean, summary.fused_geomean, summary.obs_overhead, summary.flight_overhead
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_emulator.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

struct Summary {
    geomean: f64,
    fused_geomean: f64,
    obs_overhead: f64,
    flight_overhead: f64,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut h = Harness::new();
    let rows = measure(&mut h);
    let summary = Summary {
        geomean: geomean(rows.iter().map(Row::speedup)),
        fused_geomean: geomean(rows.iter().map(Row::fused_speedup)),
        obs_overhead: geomean_obs_overhead(&rows),
        flight_overhead: geomean_flight_overhead(&rows),
    };
    write_report(&rows, &h, &summary);
    for r in &rows {
        println!(
            "{:<10} {:>12} steps  legacy {:>9.2} Msteps/s  decoded {:>9.2} Msteps/s  {:>5.2}x  \
             fused {:>9.2} Msteps/s  {:>5.2}x ({} pairs)  obs-off {:>+6.2}%  flight {:>+6.2}%",
            r.name,
            r.steps,
            r.steps_per_sec(r.legacy) / 1e6,
            r.steps_per_sec(r.decoded) / 1e6,
            r.speedup(),
            r.steps_per_sec(r.fused) / 1e6,
            r.fused_speedup(),
            r.fused_pairs,
            r.obs_overhead() * 100.0,
            r.flight_overhead() * 100.0
        );
    }
    println!("emulator geomean speedup: {:.3}x", summary.geomean);
    println!(
        "fused tier geomean speedup over decoded: {:.3}x (floor {MIN_FUSED_SPEEDUP:.2}x)",
        summary.fused_geomean
    );
    println!(
        "disabled-observability geomean overhead: {:+.2}% (limit {:.0}%)",
        summary.obs_overhead * 100.0,
        MAX_OBS_OVERHEAD * 100.0
    );
    println!(
        "flight-recorder-enabled geomean overhead: {:+.2}% (limit {:.0}%)",
        summary.flight_overhead * 100.0,
        MAX_FLIGHT_OVERHEAD * 100.0
    );
    h.final_summary();
    if check && summary.geomean < 1.0 {
        eprintln!(
            "FAIL: decoded emulator is slower than legacy (geomean {:.3}x < 1.0x)",
            summary.geomean
        );
        std::process::exit(1);
    }
    if check && summary.fused_geomean < MIN_FUSED_SPEEDUP {
        eprintln!(
            "FAIL: fused tier is slower than the decoded engine (geomean {:.3}x < \
             {MIN_FUSED_SPEEDUP:.2}x)",
            summary.fused_geomean
        );
        std::process::exit(1);
    }
    if check {
        for r in &rows {
            let first = r.fused_speedup();
            if first >= MIN_FUSED_PER_BENCH {
                continue;
            }
            let confirmed = remeasure_fused(r.name);
            println!(
                "re-measured {}: fused {confirmed:.3}x (first pass {first:.3}x)",
                r.name
            );
            if confirmed < MIN_FUSED_PER_BENCH {
                eprintln!(
                    "FAIL: fused tier regresses {} ({confirmed:.3}x < \
                     {MIN_FUSED_PER_BENCH:.2}x per-benchmark floor)",
                    r.name
                );
                std::process::exit(1);
            }
        }
    }
    if check && summary.obs_overhead > MAX_OBS_OVERHEAD {
        eprintln!(
            "FAIL: disabled observability costs {:.2}% over the plain engine (limit {:.0}%)",
            summary.obs_overhead * 100.0,
            MAX_OBS_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    if check && summary.flight_overhead > MAX_FLIGHT_OVERHEAD {
        eprintln!(
            "FAIL: the enabled flight recorder costs {:.2}% over the plain engine (limit {:.0}%)",
            summary.flight_overhead * 100.0,
            MAX_FLIGHT_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
}
