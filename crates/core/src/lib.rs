//! # symbol-core
//!
//! The top of the SYMBOL evaluation system (paper Figure 1): benchmark
//! registry, the compilation [`pipeline`], and the experiment drivers
//! that regenerate every table and figure of the paper.
//!
//! ```
//! use symbol_core::{benchmarks, pipeline::Compiled};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::by_name("conc30").unwrap();
//! let compiled = Compiled::from_source(bench.source)?;
//! let run = compiled.run_sequential()?;
//! assert!(run.steps > 0);
//! # Ok(())
//! # }
//! ```

pub mod benchmarks;
pub mod experiments;
pub mod extras;
pub mod obs_report;
pub mod pipeline;

pub use benchmarks::{Benchmark, ALL};
pub use pipeline::{Compiled, CompiledCache, FusedTier, PipelineError};
