//! The differential oracle: one case, every engine, exact agreement.
//!
//! The comparison matrix (DESIGN.md §6):
//!
//! 1. legacy [`Emulator`] vs pre-decoded [`DecodedEmulator`] — must be
//!    bit-identical on outcome *or error*, step count, and the Expect /
//!    taken-branch statistics; the decoded run is the *profiled*
//!    monomorphization, whose profile then drives stage 1½: the
//!    profile-guided [`fuse`] pass rewrites the decoded program and the
//!    fused engine must match legacy bit for bit too — every generated
//!    program cross-checks superinstruction fusion from day one;
//!    finally the same query is run three times through the pooled
//!    concurrent batch executor ([`batch::run_batch_parallel`], two
//!    workers) and every copy must reproduce the sequential result and
//!    step count exactly — the serving tier's bit-identical contract,
//!    cross-checked on every generated program;
//! 2. when the sequential run is clean, the program is compacted for a
//!    small matrix of `(mode, machine)` configurations via
//!    [`try_compact`] — an illegal schedule is a finding, and
//!    [`verify_program`] is asserted on every schedule besides — then
//!    the legacy [`VliwSim`] and pre-decoded [`DecodedVliwSim`] must
//!    return exactly equal [`SimResult`](symbol_vliw::SimResult)s whose outcome matches the
//!    sequential one;
//! 3. Prolog cases additionally check the generator's predicted
//!    outcome.
//!
//! A sequential *error* (bad address, division by zero, step limit)
//! ends the comparison after stage 1: speculation is allowed to dismiss
//! faults, so the VLIW machines have no obligation to reproduce them.

use symbol_compactor::{try_compact, verify_program, CompactMode, TracePolicy};
use symbol_core::Compiled;
use symbol_intcode::emu::ExecConfig;
use symbol_intcode::fuse::{fuse, FuseConfig};
use symbol_intcode::{
    batch, DecodedEmulator, DecodedProgram, Emulator, IciProgram, Layout, Outcome,
};
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, SimOutcome, VliwSim};

use crate::gen_intcode::{frag_layout, IntFrag};
use crate::gen_prolog::PrologCase;

/// One fuzz case at either generation level.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Case {
    /// A Prolog program through the full pipeline.
    Prolog(PrologCase),
    /// A raw IntCode fragment fed straight to the engines.
    IntCode(IntFrag),
}

impl Case {
    /// Short kind name used in filenames and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Case::Prolog(_) => "prolog",
            Case::IntCode(_) => "intcode",
        }
    }
}

/// Oracle knobs.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Step limit for the sequential engines (fragments and generated
    /// programs are tiny; hitting this usually means a lost loop bound).
    pub max_steps: u64,
    /// Whether to run the compaction + VLIW stage.
    pub check_vliw: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_steps: 200_000,
            check_vliw: true,
        }
    }
}

/// Classification of a finding. Shrinking preserves the kind: a
/// candidate only replaces the case if it fails with an equal kind, so
/// a reproducer never drifts to a different bug while shrinking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The generated Prolog source failed to compile — a generator or
    /// front-end bug.
    Pipeline,
    /// The fragment failed [`IciProgram::try_new`] validation — a
    /// generator or shrinker bug.
    Build,
    /// The two sequential engines disagree.
    SeqDivergence,
    /// The profile-guided fused engine disagrees with the legacy
    /// engine (a fusion-pass or fused-step-loop bug).
    FusedDivergence,
    /// The pooled concurrent batch executor disagrees with the
    /// sequential engine (a state-pooling or reset bug: a query saw a
    /// neighbour's leftover heap/trail, or stealing perturbed order).
    BatchDivergence,
    /// Clean run, wrong answer against the generator's prediction.
    Expectation,
    /// [`try_compact`] (or the explicit [`verify_program`] hook)
    /// rejected the schedule for configuration `i`.
    CompactViolation(usize),
    /// The two VLIW simulators disagree for configuration `i`.
    VliwDivergence(usize),
    /// The VLIW outcome differs from the sequential outcome (or a clean
    /// sequential run failed to simulate) for configuration `i`.
    OutcomeDrift(usize),
    /// Something panicked while the case was being processed.
    Panic,
}

impl FailureKind {
    /// Stable text tag (also the corpus-file vocabulary).
    pub fn tag(&self) -> String {
        match self {
            FailureKind::Pipeline => "pipeline".into(),
            FailureKind::Build => "build".into(),
            FailureKind::SeqDivergence => "seq-divergence".into(),
            FailureKind::FusedDivergence => "fused-divergence".into(),
            FailureKind::BatchDivergence => "batch-divergence".into(),
            FailureKind::Expectation => "expectation".into(),
            FailureKind::CompactViolation(i) => format!("compact-violation-{i}"),
            FailureKind::VliwDivergence(i) => format!("vliw-divergence-{i}"),
            FailureKind::OutcomeDrift(i) => format!("outcome-drift-{i}"),
            FailureKind::Panic => "panic".into(),
        }
    }

    /// Parses a [`FailureKind::tag`] back.
    pub fn from_tag(s: &str) -> Option<FailureKind> {
        let indexed =
            |prefix: &str| -> Option<usize> { s.strip_prefix(prefix).and_then(|n| n.parse().ok()) };
        match s {
            "pipeline" => Some(FailureKind::Pipeline),
            "build" => Some(FailureKind::Build),
            "seq-divergence" => Some(FailureKind::SeqDivergence),
            "fused-divergence" => Some(FailureKind::FusedDivergence),
            "batch-divergence" => Some(FailureKind::BatchDivergence),
            "expectation" => Some(FailureKind::Expectation),
            "panic" => Some(FailureKind::Panic),
            _ => indexed("compact-violation-")
                .map(FailureKind::CompactViolation)
                .or_else(|| indexed("vliw-divergence-").map(FailureKind::VliwDivergence))
                .or_else(|| indexed("outcome-drift-").map(FailureKind::OutcomeDrift)),
        }
    }
}

/// A classified finding with a human-readable diagnosis.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The classification (the shrinker's equivalence key).
    pub kind: FailureKind,
    /// What exactly disagreed.
    pub detail: String,
}

/// The compaction configurations every clean case is pushed through.
/// Index = the `usize` in the indexed [`FailureKind`]s.
pub fn vliw_configs() -> Vec<(CompactMode, MachineConfig, &'static str)> {
    vec![
        (
            CompactMode::TraceSchedule,
            MachineConfig::units(3),
            "trace/u3",
        ),
        (
            CompactMode::TraceSchedule,
            MachineConfig::prototype(),
            "trace/proto",
        ),
        (CompactMode::BasicBlock, MachineConfig::units(2), "bb/u2"),
        (CompactMode::BamGroups, MachineConfig::bam(), "bam"),
    ]
}

/// The memory layout Prolog cases execute under: big enough for any
/// generated query, small enough that per-case engine setup is cheap.
pub fn prolog_layout() -> Layout {
    Layout {
        heap_size: 1 << 14,
        env_size: 1 << 13,
        cp_size: 1 << 13,
        trail_size: 1 << 13,
        pdl_size: 1 << 10,
    }
}

/// Runs the full oracle matrix on one case.
///
/// # Errors
///
/// The first [`Failure`] found, in matrix order.
pub fn run_case(case: &Case, cfg: &OracleConfig) -> Result<(), Failure> {
    match case {
        Case::Prolog(p) => {
            let compiled =
                Compiled::from_source_with_layout(&p.source, prolog_layout()).map_err(|e| {
                    Failure {
                        kind: FailureKind::Pipeline,
                        detail: e.to_string(),
                    }
                })?;
            check_program(&compiled.ici, &compiled.layout, Some(p.expected), cfg)
        }
        Case::IntCode(frag) => {
            let ici = frag.build().map_err(|e| Failure {
                kind: FailureKind::Build,
                detail: e.to_string(),
            })?;
            check_program(&ici, &frag_layout(), None, cfg)
        }
    }
}

fn check_program(
    ici: &IciProgram,
    layout: &Layout,
    expected: Option<Outcome>,
    cfg: &OracleConfig,
) -> Result<(), Failure> {
    let exec_cfg = ExecConfig {
        max_steps: cfg.max_steps,
    };

    // Stage 1: the two sequential engines, compared bit for bit.
    let (lr, lstats, lsteps) = Emulator::new(ici, layout).run_with_stats(&exec_cfg);
    let decoded = DecodedProgram::new(ici);
    let (dr, dstats, dsteps, dprof) =
        DecodedEmulator::new(&decoded, layout).run_with_profile(&exec_cfg);
    if lr != dr
        || lsteps != dsteps
        || lstats.expect != dstats.expect
        || lstats.taken != dstats.taken
    {
        return Err(Failure {
            kind: FailureKind::SeqDivergence,
            detail: format!("legacy: {lr:?} in {lsteps} steps; decoded: {dr:?} in {dsteps} steps"),
        });
    }

    // Stage 1½: the profile-guided fused engine, against the legacy
    // baseline. Fusion must be behavior-preserving on *every* program
    // the generator can produce, errors and step limits included.
    let (fused, _report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
    let (fr, fstats, fsteps) = DecodedEmulator::new(&fused, layout).run_with_stats(&exec_cfg);
    if lr != fr
        || lsteps != fsteps
        || lstats.expect != fstats.expect
        || lstats.taken != fstats.taken
    {
        return Err(Failure {
            kind: FailureKind::FusedDivergence,
            detail: format!("legacy: {lr:?} in {lsteps} steps; fused: {fr:?} in {fsteps} steps"),
        });
    }

    // Stage 1¾: the pooled concurrent batch executor. Three copies of
    // the same query across two workers: every copy must reproduce the
    // sequential run bit for bit — result, error, and step count —
    // errors and step limits included. A divergence here means pooled
    // engine state leaked between queries or worker scheduling changed
    // execution, the exact bugs the serving tier must never have.
    let batch = batch::run_batch_parallel(&decoded, layout, &[exec_cfg; 3], 2);
    for (i, b) in batch.iter().enumerate() {
        if b.result != lr || b.steps != lsteps {
            return Err(Failure {
                kind: FailureKind::BatchDivergence,
                detail: format!(
                    "sequential: {lr:?} in {lsteps} steps; batch query {i}/3: {:?} in {} steps",
                    b.result, b.steps
                ),
            });
        }
    }

    let outcome = match &lr {
        Ok(o) => *o,
        Err(e) => {
            // A machine fault ends the differential: speculation may
            // legitimately dismiss it on the VLIW machines. It still
            // counts against a generator prediction, which only ever
            // promises Success or Failure.
            if let Some(exp) = expected {
                return Err(Failure {
                    kind: FailureKind::Expectation,
                    detail: format!("expected {exp:?}, sequential run errored: {e}"),
                });
            }
            return Ok(());
        }
    };
    if let Some(exp) = expected {
        if exp != outcome {
            return Err(Failure {
                kind: FailureKind::Expectation,
                detail: format!("expected {exp:?}, got {outcome:?}"),
            });
        }
    }
    if !cfg.check_vliw {
        return Ok(());
    }

    // Stage 2: compaction + the two VLIW simulators, per configuration.
    let sim_cfg = SimConfig {
        max_cycles: cfg.max_steps.saturating_mul(8).saturating_add(10_000),
    };
    for (i, (mode, machine, name)) in vliw_configs().into_iter().enumerate() {
        let compacted = try_compact(ici, &lstats, &machine, mode, &TracePolicy::default())
            .map_err(|v| Failure {
                kind: FailureKind::CompactViolation(i),
                detail: format!("{name}: {v}"),
            })?;
        // try_compact already verified; assert the hook explicitly so a
        // future refactor cannot silently drop the check.
        if let Err(v) = verify_program(&compacted.program, &machine) {
            return Err(Failure {
                kind: FailureKind::CompactViolation(i),
                detail: format!("{name} (post-hoc verify): {v}"),
            });
        }

        let legacy = VliwSim::new(&compacted.program, machine, layout).run(&sim_cfg);
        let dvliw = DecodedVliw::new(&compacted.program, machine);
        let dec = DecodedVliwSim::new(&dvliw, layout).run(&sim_cfg);
        if legacy != dec {
            return Err(Failure {
                kind: FailureKind::VliwDivergence(i),
                detail: format!("{name}: legacy {legacy:?} vs decoded {dec:?}"),
            });
        }
        match legacy {
            Ok(r) => {
                let sim_out = match r.outcome {
                    SimOutcome::Success => Outcome::Success,
                    SimOutcome::Failure => Outcome::Failure,
                };
                if sim_out != outcome {
                    return Err(Failure {
                        kind: FailureKind::OutcomeDrift(i),
                        detail: format!("{name}: sequential {outcome:?} vs simulated {sim_out:?}"),
                    });
                }
            }
            Err(e) => {
                return Err(Failure {
                    kind: FailureKind::OutcomeDrift(i),
                    detail: format!("{name}: clean sequential run, but the simulator errored: {e}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use symbol_intcode::{Label, Op};

    #[test]
    fn failure_tags_round_trip() {
        let kinds = [
            FailureKind::Pipeline,
            FailureKind::Build,
            FailureKind::SeqDivergence,
            FailureKind::FusedDivergence,
            FailureKind::BatchDivergence,
            FailureKind::Expectation,
            FailureKind::CompactViolation(2),
            FailureKind::VliwDivergence(0),
            FailureKind::OutcomeDrift(3),
            FailureKind::Panic,
        ];
        for k in kinds {
            assert_eq!(FailureKind::from_tag(&k.tag()), Some(k.clone()), "{k:?}");
        }
        assert_eq!(FailureKind::from_tag("nonsense"), None);
    }

    #[test]
    fn a_correct_program_passes_the_whole_matrix() {
        let case = Case::Prolog(PrologCase {
            source: "main :- X is 2 + 3, X =:= 5.".into(),
            expected: Outcome::Success,
        });
        run_case(&case, &OracleConfig::default()).unwrap();
    }

    #[test]
    fn a_wrong_expectation_is_caught() {
        let case = Case::Prolog(PrologCase {
            source: "main :- X is 2 + 3, X =:= 5.".into(),
            expected: Outcome::Failure,
        });
        let f = run_case(&case, &OracleConfig::default()).unwrap_err();
        assert_eq!(f.kind, FailureKind::Expectation);
    }

    #[test]
    fn a_trivial_fragment_passes() {
        let case = Case::IntCode(IntFrag {
            ops: vec![Op::Halt { success: true }],
        });
        run_case(&case, &OracleConfig::default()).unwrap();
    }

    #[test]
    fn an_unparseable_program_is_a_pipeline_failure() {
        let case = Case::Prolog(PrologCase {
            source: "main :- ???!!!".into(),
            expected: Outcome::Success,
        });
        let f = run_case(&case, &OracleConfig::default()).unwrap_err();
        assert_eq!(f.kind, FailureKind::Pipeline);
    }

    #[test]
    fn a_dangling_fragment_is_a_build_failure() {
        // A single jump to label 5 with only one op: target unbound.
        let mut frag = IntFrag {
            ops: vec![Op::Jmp { t: Label(0) }, Op::Halt { success: true }],
        };
        frag.ops[0] = Op::Jmp { t: Label(9) };
        let f = run_case(&Case::IntCode(frag), &OracleConfig::default()).unwrap_err();
        assert_eq!(f.kind, FailureKind::Build);
    }

    #[test]
    fn generated_fragments_pass_the_sequential_stage() {
        // A smoke sweep with the VLIW stage off (the full matrix runs
        // in the driver's own tests and in CI's fuzz-smoke job).
        let cfg = OracleConfig {
            check_vliw: false,
            ..OracleConfig::default()
        };
        for seed in 0..100u64 {
            let frag = crate::gen_intcode::generate(&mut Rng::new(seed));
            run_case(&Case::IntCode(frag), &cfg)
                .unwrap_or_else(|f| panic!("seed {seed}: {:?} {}", f.kind, f.detail));
        }
    }
}
