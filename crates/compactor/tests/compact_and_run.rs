//! The end-to-end proof of the compactor: compile Prolog programs,
//! trace-schedule them, execute the scheduled code on the validating
//! VLIW simulator and require the same answer as sequential execution —
//! for every compaction mode and several machine widths.

use symbol_compactor::{compact, sequential_cycles, CompactMode, SeqDurations, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout, Outcome};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn small_layout() -> Layout {
    Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    }
}

struct Case {
    ici: symbol_intcode::IciProgram,
    stats: symbol_intcode::ExecStats,
    layout: Layout,
    seq_outcome: Outcome,
}

fn prepare(src: &str) -> Case {
    let program = symbol_prolog::parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = small_layout();
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig {
            max_steps: 50_000_000,
        })
        .expect("sequential run");
    Case {
        ici,
        stats: run.stats,
        layout,
        seq_outcome: run.outcome,
    }
}

fn check_all_modes(src: &str) {
    let case = prepare(src);
    let want = match case.seq_outcome {
        Outcome::Success => SimOutcome::Success,
        Outcome::Failure => SimOutcome::Failure,
    };
    let seq = sequential_cycles(&case.ici, &case.stats, &SeqDurations::default());

    for mode in [
        CompactMode::TraceSchedule,
        CompactMode::BasicBlock,
        CompactMode::BamGroups,
    ] {
        for units in [1usize, 2, 3, 5] {
            if mode == CompactMode::BamGroups && units != 1 {
                continue;
            }
            let machine = MachineConfig::units(units);
            let compacted = compact(
                &case.ici,
                &case.stats,
                &machine,
                mode,
                &TracePolicy::default(),
            );
            let result = VliwSim::new(&compacted.program, machine, &case.layout)
                .run(&SimConfig::default())
                .unwrap_or_else(|e| panic!("{mode:?} x {units} units failed: {e}\nsrc: {src}"));
            assert_eq!(
                result.outcome, want,
                "{mode:?} x {units} units: wrong answer"
            );
            // Multi-unit trace/basic-block schedules must never lose
            // to the sequential machine. Single-issue configurations
            // (1 unit, and the BAM model with its group barriers) are
            // nearly sequential themselves and may overshoot slightly
            // on tiny programs where taken-branch bubbles dominate.
            let bound = if mode == CompactMode::BamGroups || units == 1 {
                seq + seq / 8
            } else {
                seq
            };
            assert!(
                result.cycles <= bound,
                "{mode:?} x {units} units slower than sequential: {} > {seq}",
                result.cycles
            );
        }
    }
}

#[test]
fn append_compacts_correctly() {
    check_all_modes(
        "main :- app([1,2,3,4,5], [6,7], R), R = [1,2,3,4,5,6,7].
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
}

#[test]
fn naive_reverse_compacts_correctly() {
    check_all_modes(
        "main :- nrev([1,2,3,4,5,6,7,8], R), R = [8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
}

#[test]
fn backtracking_search_compacts_correctly() {
    check_all_modes(
        "main :- q(X), r(X).
         q(1). q(2). q(3).
         r(3).",
    );
}

#[test]
fn cut_compacts_correctly() {
    check_all_modes(
        "main :- p(X), X = 1.
         p(X) :- q(X), !, r(X).
         p(99).
         q(1). q(2).
         r(1).",
    );
}

#[test]
fn arithmetic_compacts_correctly() {
    check_all_modes(
        "main :- fib(12, R), R = 144.
         fib(0, 0).
         fib(1, 1).
         fib(N, R) :- N > 1, A is N - 1, B is N - 2,
                      fib(A, RA), fib(B, RB), R is RA + RB.",
    );
}

#[test]
fn structures_compact_correctly() {
    check_all_modes(
        "main :- d(x * x + x, x, D), size(D, N), N = 9.
         d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
         d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
         d(X, X, 1) :- !.
         d(_, _, 0).
         size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
         size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
         size(_, 1).",
    );
}

#[test]
fn failure_answer_is_preserved() {
    check_all_modes("main :- a(1), a(9). a(1). a(2).");
}

#[test]
fn negation_and_ite_compact_correctly() {
    check_all_modes(
        "main :- \\+ bad(2), (ok(1) -> X = yes ; X = no), X = yes.
         bad(1).
         ok(1).",
    );
}

#[test]
fn trace_beats_or_matches_basic_block_on_recursion() {
    let case = prepare(
        "main :- len(L, 40), app(L, [x], _).
         len([], 0).
         len([a|T], N) :- N > 0, N1 is N - 1, len(T, N1).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    let machine = MachineConfig::units(3);
    let run = |mode| {
        let c = compact(
            &case.ici,
            &case.stats,
            &machine,
            mode,
            &TracePolicy::default(),
        );
        VliwSim::new(&c.program, machine, &case.layout)
            .run(&SimConfig::default())
            .expect("run")
            .cycles
    };
    let trace = run(CompactMode::TraceSchedule);
    let bb = run(CompactMode::BasicBlock);
    assert!(
        trace as f64 <= bb as f64 * 1.05,
        "trace scheduling much slower than basic blocks: {trace} vs {bb}"
    );
}

#[test]
fn wider_machines_never_hurt() {
    let case = prepare(
        "main :- nrev([1,2,3,4,5,6,7,8,9,10], R), R = [10,9,8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    let mut prev = u64::MAX;
    for units in 1..=5 {
        let machine = MachineConfig::units(units);
        let c = compact(
            &case.ici,
            &case.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let cycles = VliwSim::new(&c.program, machine, &case.layout)
            .run(&SimConfig::default())
            .expect("run")
            .cycles;
        if prev != u64::MAX {
            assert!(
                cycles <= prev + prev / 50,
                "{units} units noticeably slower than {} units",
                units - 1
            );
        }
        prev = cycles;
    }
}
