//! Cycle-accurate VLIW simulator.
//!
//! Executes a [`VliwProgram`] on a [`MachineConfig`], validating as it
//! goes that the schedule respects the machine: slot budgets per class,
//! the shared-memory port limit, result latencies, the two-format
//! restriction of the prototype, and single-writer-per-register words.
//! A schedule produced by a buggy compactor fails loudly here instead
//! of silently computing wrong answers or impossible speed-ups.
//!
//! Timing model (paper §4.3): one instruction word issues per cycle;
//! fall-through costs nothing; every taken control transfer pays the
//! pipelined-control bubble; loads deliver their result
//! `mem_latency` cycles after issue.

use std::error::Error;
use std::fmt;

use symbol_intcode::layout::Layout;
use symbol_intcode::{Label, Op, OpClass, Operand, Tag, Word};

use crate::machine::MachineConfig;
use crate::program::VliwProgram;

/// Why the simulated query stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SimOutcome {
    /// `Halt { success: true }`.
    Success,
    /// `Halt { success: false }`.
    Failure,
}

/// Simulation error: either a machine-model violation (a compactor
/// bug) or a run-time fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// More ops of a class in one word than the machine has slots.
    SlotOverflow {
        /// Instruction index.
        at: usize,
        /// The class that overflowed.
        class: OpClass,
    },
    /// More ops in one word than the machine's total issue width.
    WidthOverflow {
        /// Instruction index.
        at: usize,
    },
    /// Two ops write the same register in one word.
    DoubleWrite {
        /// Instruction index.
        at: usize,
        /// The register written twice.
        reg: u32,
    },
    /// A register is read before its producer's latency elapsed.
    LatencyViolation {
        /// Instruction index.
        at: usize,
        /// The register read too early.
        reg: u32,
    },
    /// ALU and control op share a unit in one word under the
    /// two-format restriction.
    FormatConflict {
        /// Instruction index.
        at: usize,
        /// The unit with the conflict.
        unit: usize,
    },
    /// Two ops issue on the same unit/class slot.
    UnitConflict {
        /// Instruction index.
        at: usize,
        /// The unit with the conflict.
        unit: usize,
    },
    /// Memory access out of range.
    BadAddress {
        /// Instruction index.
        at: usize,
        /// The offending address.
        addr: i64,
    },
    /// Division by zero.
    DivideByZero {
        /// Instruction index.
        at: usize,
    },
    /// Indirect jump through a non-code word.
    BadCodeWord {
        /// Instruction index.
        at: usize,
    },
    /// Jump to a label with no address in this program.
    UnmappedLabel {
        /// Instruction index.
        at: usize,
        /// The unresolvable label.
        label: Label,
    },
    /// Cycle limit exceeded.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Fell off the end of the program.
    RanOffEnd,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SlotOverflow { at, class } => {
                write!(f, "slot overflow for class {class} at word {at}")
            }
            SimError::WidthOverflow { at } => {
                write!(f, "issue width exceeded at word {at}")
            }
            SimError::DoubleWrite { at, reg } => {
                write!(f, "double write of r{reg} at word {at}")
            }
            SimError::LatencyViolation { at, reg } => {
                write!(f, "r{reg} read before ready at word {at}")
            }
            SimError::FormatConflict { at, unit } => {
                write!(f, "format conflict on unit {unit} at word {at}")
            }
            SimError::UnitConflict { at, unit } => {
                write!(f, "unit {unit} oversubscribed at word {at}")
            }
            SimError::BadAddress { at, addr } => {
                write!(f, "bad address {addr} at word {at}")
            }
            SimError::DivideByZero { at } => write!(f, "division by zero at word {at}"),
            SimError::BadCodeWord { at } => write!(f, "bad code word at word {at}"),
            SimError::UnmappedLabel { at, label } => {
                write!(f, "unmapped label {label} at word {at}")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::RanOffEnd => write!(f, "ran off the end of the program"),
        }
    }
}

impl Error for SimError {}

/// Result of a completed simulation. `PartialEq` compares every
/// counter exactly — the differential suites require profiled and
/// plain runs to agree bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Success or failure of the query.
    pub outcome: SimOutcome,
    /// Total machine cycles, including taken-branch bubbles.
    pub cycles: u64,
    /// Instruction words executed.
    pub instructions: u64,
    /// Operations executed.
    pub ops: u64,
    /// Taken control transfers (each paid the bubble).
    pub taken_branches: u64,
    /// Executed operations per class: memory, ALU, move, control
    /// (the event-driven simulator's resource-utilization statistics,
    /// paper §3.2).
    pub class_ops: [u64; OpClass::COUNT],
}

impl SimResult {
    /// Average operations issued per cycle.
    pub fn issue_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }

    /// Utilization of a resource class against its per-cycle budget
    /// (fraction of slot-cycles actually used).
    pub fn utilization(&self, machine: &MachineConfig, class: OpClass) -> f64 {
        let budget = machine.slots(class) as u64 * self.cycles;
        if budget == 0 {
            0.0
        } else {
            self.class_ops[class.index()] as f64 / budget as f64
        }
    }
}

/// Simulation limits.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Abort after this many cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 2_000_000_000,
        }
    }
}

/// Validates one instruction word against a machine's static resource
/// model: total issue width, per-class slot budgets, one op per
/// (unit, class) pair, and the prototype's two-format restriction.
///
/// The verdict depends only on the word and the machine — never on
/// run-time state — so the pre-decoded engine evaluates it once per
/// word at load time while the legacy simulator calls it on every
/// issue; both report the identical (first) violation.
///
/// # Errors
///
/// The first violation in the legacy check order: width overflow, then
/// per-slot unit/format conflicts, then per-class slot overflow.
pub fn check_word_resources(
    word: &crate::program::VliwInstr,
    machine: &MachineConfig,
    at: usize,
) -> Result<(), SimError> {
    use OpClass::*;
    if word.slots.len() > machine.issue_width {
        return Err(SimError::WidthOverflow { at });
    }
    let mut counts = [0usize; OpClass::COUNT];
    let mut unit_class: Vec<(usize, OpClass)> = Vec::new();
    for s in &word.slots {
        let c = s.op.class();
        counts[c.index()] += 1;
        if unit_class.contains(&(s.unit, c)) {
            return Err(SimError::UnitConflict { at, unit: s.unit });
        }
        unit_class.push((s.unit, c));
        if machine.split_formats {
            let other = match c {
                Alu | Move => Some(Control),
                Control => Some(Alu),
                Memory => None,
            };
            if let Some(o) = other {
                if unit_class.contains(&(s.unit, o)) {
                    return Err(SimError::FormatConflict { at, unit: s.unit });
                }
            }
        }
    }
    let budgets = OpClass::ALL.map(|c| (c, counts[c.index()]));
    for (class, used) in budgets {
        if used > machine.slots(class) {
            return Err(SimError::SlotOverflow { at, class });
        }
    }
    Ok(())
}

/// The VLIW machine state.
#[derive(Debug)]
pub struct VliwSim<'a> {
    program: &'a VliwProgram,
    machine: MachineConfig,
    /// Pre-decoded direct branch targets: for every word and slot, the
    /// slot op's explicit `Label` operand resolved to an instruction
    /// index at program-load time (`usize::MAX` = no explicit target,
    /// or a label with no address in this program). The issue loop
    /// never consults the label table for direct control transfers;
    /// only indirect jumps (`JmpR`) resolve dynamically.
    targets: Vec<Vec<usize>>,
    regs: Vec<Word>,
    ready: Vec<u64>,
    mem: Vec<Word>,
    pc: usize,
}

impl<'a> VliwSim<'a> {
    /// Creates a simulator with zeroed state.
    pub fn new(program: &'a VliwProgram, machine: MachineConfig, layout: &Layout) -> Self {
        let mut max_reg = 0;
        for w in program.instrs() {
            for s in &w.slots {
                for r in s.op.uses().into_iter().chain(s.op.def()) {
                    max_reg = max_reg.max(r.0);
                }
            }
        }
        let targets = program
            .instrs()
            .iter()
            .map(|w| {
                w.slots
                    .iter()
                    .map(|s| s.op.target().map_or(usize::MAX, |t| program.label_addr(t)))
                    .collect()
            })
            .collect();
        VliwSim {
            program,
            machine,
            targets,
            regs: vec![Word::int(0); max_reg as usize + 1],
            ready: vec![0; max_reg as usize + 1],
            mem: vec![Word::int(0); layout.total()],
            pc: program.label_addr(program.entry()),
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on any machine-model violation or
    /// run-time fault; Prolog failure is a normal outcome.
    pub fn run(&mut self, cfg: &SimConfig) -> Result<SimResult, SimError> {
        let instrs = self.program.instrs();
        let mut cycle: u64 = 0;
        let mut executed: u64 = 0;
        let mut ops: u64 = 0;
        let mut taken: u64 = 0;
        let mut class_ops = [0u64; OpClass::COUNT];

        loop {
            if cycle >= cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: cfg.max_cycles,
                });
            }
            let at = self.pc;
            let word = match instrs.get(at) {
                Some(w) => w,
                None => return Err(SimError::RanOffEnd),
            };
            executed += 1;
            ops += word.slots.len() as u64;
            for slot in &word.slots {
                class_ops[slot.op.class().index()] += 1;
            }

            self.check_resources(word, at)?;

            // Phase 1: evaluate everything against the pre-state.
            let mut reg_writes: Vec<(u32, Word, u64)> = Vec::new();
            let mut mem_writes: Vec<(i64, Word)> = Vec::new();
            let mut transfer: Option<Option<usize>> = None; // Some(None) = halt-success marker handled below
            let mut halt: Option<SimOutcome> = None;

            for (si, s) in word.slots.iter().enumerate() {
                // Latency check on every read.
                for r in s.op.uses() {
                    if self.ready[r.0 as usize] > cycle {
                        return Err(SimError::LatencyViolation { at, reg: r.0 });
                    }
                }
                match &s.op {
                    Op::Ld { d, base, off } => {
                        let addr = self.regs[base.0 as usize].val + *off as i64;
                        let w = match self.load(addr, at) {
                            Ok(w) => w,
                            // dismissable speculative load: the value is
                            // dead on the faulting path
                            Err(_) if s.speculative => Word::int(0),
                            Err(e) => return Err(e),
                        };
                        reg_writes.push((d.0, w, cycle + self.machine.mem_latency as u64));
                    }
                    Op::St { s: src, base, off } => {
                        let addr = self.regs[base.0 as usize].val + *off as i64;
                        self.check_addr(addr, at)?;
                        mem_writes.push((addr, self.regs[src.0 as usize]));
                    }
                    Op::Mv { d, s: src } => {
                        reg_writes.push((d.0, self.regs[src.0 as usize], cycle + 1));
                    }
                    Op::MvI { d, w } => reg_writes.push((d.0, *w, cycle + 1)),
                    Op::Alu { op, d, a, b } => {
                        let av = self.regs[a.0 as usize].val;
                        let bv = self.operand(b);
                        let v = match op.eval(av, bv) {
                            Some(v) => v,
                            None if s.speculative => 0,
                            None => return Err(SimError::DivideByZero { at }),
                        };
                        reg_writes.push((
                            d.0,
                            Word::int(v),
                            cycle + self.machine.alu_latency as u64,
                        ));
                    }
                    Op::AddA { d, a, b } => {
                        let aw = self.regs[a.0 as usize];
                        let bv = self.operand(b);
                        reg_writes.push((
                            d.0,
                            Word {
                                tag: aw.tag,
                                val: aw.val.wrapping_add(bv),
                            },
                            cycle + self.machine.alu_latency as u64,
                        ));
                    }
                    Op::MkTag { d, s: src, tag } => {
                        let v = self.regs[src.0 as usize].val;
                        reg_writes.push((
                            d.0,
                            Word { tag: *tag, val: v },
                            cycle + self.machine.alu_latency as u64,
                        ));
                    }
                    Op::Br { cond, a, b, t } => {
                        if transfer.is_none() && halt.is_none() {
                            let av = self.regs[a.0 as usize].val;
                            let bv = self.operand(b);
                            if cond.eval(av, bv) {
                                transfer = Some(Some(self.direct(at, si, *t)?));
                            }
                        }
                    }
                    Op::BrTag { a, tag, eq, t } => {
                        if transfer.is_none() && halt.is_none() {
                            let c = (self.regs[a.0 as usize].tag == *tag) == *eq;
                            if c {
                                transfer = Some(Some(self.direct(at, si, *t)?));
                            }
                        }
                    }
                    Op::BrWord { a, w, eq, t } => {
                        if transfer.is_none() && halt.is_none() {
                            let c = (self.regs[a.0 as usize] == *w) == *eq;
                            if c {
                                transfer = Some(Some(self.direct(at, si, *t)?));
                            }
                        }
                    }
                    Op::BrWEq { a, b, eq, t } => {
                        if transfer.is_none() && halt.is_none() {
                            let c = (self.regs[a.0 as usize] == self.regs[b.0 as usize]) == *eq;
                            if c {
                                transfer = Some(Some(self.direct(at, si, *t)?));
                            }
                        }
                    }
                    Op::Jmp { t } => {
                        if transfer.is_none() && halt.is_none() {
                            transfer = Some(Some(self.direct(at, si, *t)?));
                        }
                    }
                    Op::JmpR { r } => {
                        if transfer.is_none() && halt.is_none() {
                            let w = self.regs[r.0 as usize];
                            if w.tag != Tag::Cod {
                                return Err(SimError::BadCodeWord { at });
                            }
                            transfer = Some(Some(self.resolve(Label(w.val as u32), at)?));
                        }
                    }
                    Op::Halt { success } => {
                        if transfer.is_none() && halt.is_none() {
                            halt = Some(if *success {
                                SimOutcome::Success
                            } else {
                                SimOutcome::Failure
                            });
                        }
                    }
                }
            }

            // Phase 2: commit.
            {
                let mut written: Vec<u32> = Vec::with_capacity(reg_writes.len());
                for (r, w, rdy) in reg_writes {
                    if written.contains(&r) {
                        return Err(SimError::DoubleWrite { at, reg: r });
                    }
                    written.push(r);
                    self.regs[r as usize] = w;
                    self.ready[r as usize] = rdy;
                }
            }
            for (addr, w) in mem_writes {
                self.mem[addr as usize] = w;
            }

            if let Some(outcome) = halt {
                return Ok(SimResult {
                    outcome,
                    cycles: cycle + 1,
                    instructions: executed,
                    ops,
                    taken_branches: taken,
                    class_ops,
                });
            }
            match transfer {
                Some(Some(target)) => {
                    taken += 1;
                    cycle += 1 + self.machine.taken_branch_penalty as u64;
                    self.pc = target;
                }
                _ => {
                    cycle += 1;
                    self.pc = at + 1;
                }
            }
        }
    }

    fn check_resources(&self, word: &crate::program::VliwInstr, at: usize) -> Result<(), SimError> {
        check_word_resources(word, &self.machine, at)
    }

    /// Pre-resolved target of the direct control transfer in slot `si`
    /// of word `at`; the label is only used to report an unmapped
    /// target (deferred to first execution, matching lazy resolution).
    fn direct(&self, at: usize, si: usize, l: Label) -> Result<usize, SimError> {
        let a = self.targets[at][si];
        if a == usize::MAX {
            Err(SimError::UnmappedLabel { at, label: l })
        } else {
            Ok(a)
        }
    }

    /// Dynamic label resolution, still needed for indirect jumps whose
    /// target lives in a `Cod`-tagged register at run time.
    fn resolve(&self, l: Label, at: usize) -> Result<usize, SimError> {
        let a = self.program.label_addr(l);
        if a == usize::MAX {
            Err(SimError::UnmappedLabel { at, label: l })
        } else {
            Ok(a)
        }
    }

    fn operand(&self, o: &Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.0 as usize].val,
            Operand::Imm(i) => *i,
        }
    }

    fn check_addr(&self, addr: i64, at: usize) -> Result<(), SimError> {
        if addr < 0 || addr as usize >= self.mem.len() {
            Err(SimError::BadAddress { at, addr })
        } else {
            Ok(())
        }
    }

    fn load(&self, addr: i64, at: usize) -> Result<Word, SimError> {
        self.check_addr(addr, at)?;
        Ok(self.mem[addr as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{SlotOp, VliwInstr};
    use std::collections::HashMap;
    use symbol_intcode::{AluOp, Cond, R};

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    fn word(ops: Vec<Op>) -> VliwInstr {
        VliwInstr {
            slots: ops
                .into_iter()
                .enumerate()
                .map(|(u, op)| SlotOp {
                    unit: u,
                    op,
                    speculative: false,
                })
                .collect(),
        }
    }

    fn run_words(instrs: Vec<VliwInstr>, machine: MachineConfig) -> Result<SimResult, SimError> {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        let p = VliwProgram::new(instrs, labels, 1, Label(0));
        VliwSim::new(&p, machine, &tiny_layout()).run(&SimConfig::default())
    }

    #[test]
    fn word_resources_honor_extra_memory_ports() {
        // Two loads in one word: illegal on the paper's single-ported
        // machine, legal once the sweep grants a second port.
        let two_loads = word(vec![
            Op::Ld {
                d: R(40),
                base: R(41),
                off: 0,
            },
            Op::Ld {
                d: R(42),
                base: R(41),
                off: 1,
            },
        ]);
        let one_port = MachineConfig::units(2);
        assert!(matches!(
            check_word_resources(&two_loads, &one_port, 0),
            Err(SimError::SlotOverflow {
                at: 0,
                class: OpClass::Memory
            })
        ));
        let two_ports = MachineConfig {
            mem_ports: 2,
            ..one_port
        };
        assert!(check_word_resources(&two_loads, &two_ports, 0).is_ok());
        // The port budget is still clamped by the unit count: 4 ports
        // on 2 units cannot issue 3 memory ops.
        let three_loads = word(vec![
            Op::Ld {
                d: R(40),
                base: R(41),
                off: 0,
            },
            Op::Ld {
                d: R(42),
                base: R(41),
                off: 1,
            },
            Op::Ld {
                d: R(43),
                base: R(41),
                off: 2,
            },
        ]);
        let many_ports = MachineConfig {
            mem_ports: 4,
            issue_width: 4,
            ..MachineConfig::units(2)
        };
        assert!(matches!(
            check_word_resources(&three_loads, &many_ports, 7),
            Err(SimError::SlotOverflow {
                at: 7,
                class: OpClass::Memory
            })
        ));
    }

    #[test]
    fn word_resources_honor_issue_width_below_units() {
        // A sweep corner: 4 units but only 2 issue slots per cycle.
        // Width binds before any per-class budget.
        let narrow = MachineConfig {
            issue_width: 2,
            ..MachineConfig::units(4)
        };
        let three_moves = word(vec![
            Op::Mv { d: R(40), s: R(41) },
            Op::Mv { d: R(42), s: R(41) },
            Op::Mv { d: R(43), s: R(41) },
        ]);
        assert!(matches!(
            check_word_resources(&three_moves, &narrow, 3),
            Err(SimError::WidthOverflow { at: 3 })
        ));
        let two_moves = word(vec![
            Op::Mv { d: R(40), s: R(41) },
            Op::Mv { d: R(42), s: R(41) },
        ]);
        assert!(check_word_resources(&two_moves, &narrow, 3).is_ok());
    }

    #[test]
    fn zero_latency_machine_executes_correctly() {
        // The zero-latency corner of the grid: results are ready in
        // the next cycle and taken branches cost nothing extra. The
        // program must still produce the right answer and run in no
        // more cycles than the paper's timing.
        let zero = MachineConfig {
            mem_latency: 0,
            alu_latency: 0,
            taken_branch_penalty: 0,
            ..MachineConfig::units(2)
        };
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(40),
                w: Word::int(20),
            }]),
            word(vec![Op::Alu {
                op: AluOp::Add,
                d: R(40),
                a: R(40),
                b: Operand::Imm(1),
            }]),
            word(vec![Op::Br {
                cond: Cond::Lt,
                a: R(40),
                b: Operand::Imm(30),
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 1);
        let p = VliwProgram::new(instrs, labels, 2, Label(0));
        let fast = VliwSim::new(&p, zero, &tiny_layout())
            .run(&SimConfig::default())
            .expect("zero-latency machine runs");
        assert_eq!(fast.outcome, SimOutcome::Success);
        let paper = VliwSim::new(&p, MachineConfig::units(2), &tiny_layout())
            .run(&SimConfig::default())
            .expect("paper machine runs");
        assert_eq!(paper.outcome, SimOutcome::Success);
        assert!(fast.cycles <= paper.cycles);
        assert_eq!(fast.ops, paper.ops, "timing must not change the work");
    }

    #[test]
    fn cycle_limit_enforced() {
        // an unconditional self-loop must hit the configured limit
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        let instrs = vec![word(vec![Op::Jmp { t: Label(0) }])];
        let p = VliwProgram::new(instrs, labels, 1, Label(0));
        let err = VliwSim::new(&p, MachineConfig::units(1), &tiny_layout())
            .run(&SimConfig { max_cycles: 1000 })
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 1000 }));
    }

    #[test]
    fn swap_semantics_success() {
        let instrs = vec![
            word(vec![
                Op::MvI {
                    d: R(40),
                    w: Word::int(1),
                },
                Op::MvI {
                    d: R(41),
                    w: Word::int(2),
                },
            ]),
            VliwInstr::default(),
            word(vec![
                Op::Mv { d: R(40), s: R(41) },
                Op::Mv { d: R(41), s: R(40) },
            ]),
            VliwInstr::default(),
            word(vec![Op::Br {
                cond: Cond::Ne,
                a: R(41),
                b: Operand::Imm(1),
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
            word(vec![Op::Halt { success: false }]), // label 1: r41 != 1
        ];
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 6);
        let p = VliwProgram::new(instrs, labels, 2, Label(0));
        let r = VliwSim::new(&p, MachineConfig::units(4), &tiny_layout())
            .run(&SimConfig::default())
            .unwrap();
        assert_eq!(r.outcome, SimOutcome::Success, "swap must read pre-state");
    }

    #[test]
    fn latency_violation_detected() {
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(50),
                w: Word::int(3),
            }]),
            VliwInstr::default(),
            word(vec![Op::Ld {
                d: R(40),
                base: R(50),
                off: 0,
            }]),
            // consumer one cycle later: too early for mem_latency 2
            word(vec![Op::Mv { d: R(41), s: R(40) }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let err = run_words(instrs, MachineConfig::units(1)).unwrap_err();
        assert!(matches!(err, SimError::LatencyViolation { reg: 40, .. }));
    }

    #[test]
    fn memory_port_overflow_detected() {
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(50),
                w: Word::int(3),
            }]),
            VliwInstr::default(),
            word(vec![
                Op::Ld {
                    d: R(40),
                    base: R(50),
                    off: 0,
                },
                Op::Ld {
                    d: R(41),
                    base: R(50),
                    off: 1,
                },
            ]),
            word(vec![Op::Halt { success: true }]),
        ];
        let err = run_words(instrs, MachineConfig::units(4)).unwrap_err();
        assert!(matches!(err, SimError::SlotOverflow { .. }));
    }

    #[test]
    fn taken_branch_pays_bubble() {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 1);
        let instrs = vec![
            word(vec![Op::Jmp { t: Label(1) }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let p = VliwProgram::new(instrs, labels, 2, Label(0));
        let r = VliwSim::new(&p, MachineConfig::units(1), &tiny_layout())
            .run(&SimConfig::default())
            .unwrap();
        // jump cycle (1) + bubble (1) + halt cycle (1)
        assert_eq!(r.cycles, 3);
        assert_eq!(r.taken_branches, 1);
    }

    #[test]
    fn double_write_detected() {
        let instrs = vec![
            word(vec![
                Op::MvI {
                    d: R(40),
                    w: Word::int(1),
                },
                Op::MvI {
                    d: R(40),
                    w: Word::int(2),
                },
            ]),
            word(vec![Op::Halt { success: true }]),
        ];
        let err = run_words(instrs, MachineConfig::units(4)).unwrap_err();
        assert!(matches!(err, SimError::DoubleWrite { reg: 40, .. }));
    }

    #[test]
    fn format_conflict_detected_on_prototype() {
        let instrs = vec![
            VliwInstr {
                slots: vec![
                    SlotOp {
                        unit: 0,
                        op: Op::Alu {
                            op: AluOp::Add,
                            d: R(40),
                            a: R(40),
                            b: Operand::Imm(1),
                        },
                        speculative: false,
                    },
                    SlotOp {
                        unit: 0,
                        op: Op::Jmp { t: Label(0) },
                        speculative: false,
                    },
                ],
            },
            word(vec![Op::Halt { success: true }]),
        ];
        let err = run_words(instrs, MachineConfig::prototype()).unwrap_err();
        assert!(matches!(err, SimError::FormatConflict { .. }));
        // the same word is fine on the unrestricted machine if on one unit?
        // (unit conflict rules still apply across classes: alu+control on the
        // same unit is legal without split formats)
    }

    #[test]
    fn alu_mod_is_floored_and_rem_is_truncated() {
        // -7 mod 3 =:= 2 (floored, divisor's sign); -7 rem 3 =:= -1
        // (truncated, dividend's sign). Any other result branches to
        // the failure halt.
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 7);
        let instrs = vec![
            word(vec![Op::MvI {
                d: R(40),
                w: Word::int(-7),
            }]),
            VliwInstr::default(),
            word(vec![Op::Alu {
                op: AluOp::Mod,
                d: R(41),
                a: R(40),
                b: Operand::Imm(3),
            }]),
            word(vec![Op::Alu {
                op: AluOp::Rem,
                d: R(42),
                a: R(40),
                b: Operand::Imm(3),
            }]),
            word(vec![Op::Br {
                cond: Cond::Ne,
                a: R(41),
                b: Operand::Imm(2),
                t: Label(1),
            }]),
            word(vec![Op::Br {
                cond: Cond::Ne,
                a: R(42),
                b: Operand::Imm(-1),
                t: Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
            word(vec![Op::Halt { success: false }]), // label 1
        ];
        let p = VliwProgram::new(instrs, labels, 2, Label(0));
        let r = VliwSim::new(&p, MachineConfig::units(1), &tiny_layout())
            .run(&SimConfig::default())
            .unwrap();
        assert_eq!(r.outcome, SimOutcome::Success);
    }

    #[test]
    fn multiway_branch_priority() {
        // two branches, both true: the first (priority) wins
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 1);
        labels.insert(Label(2), 2);
        let instrs = vec![
            word(vec![Op::Jmp { t: Label(1) }, Op::Jmp { t: Label(2) }]),
            word(vec![Op::Halt { success: true }]),  // label 1
            word(vec![Op::Halt { success: false }]), // label 2
        ];
        let p = VliwProgram::new(instrs, labels, 3, Label(0));
        let r = VliwSim::new(&p, MachineConfig::units(2), &tiny_layout())
            .run(&SimConfig::default())
            .unwrap();
        assert_eq!(r.outcome, SimOutcome::Success);
    }
}
