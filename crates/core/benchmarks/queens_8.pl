% queens_8 -- first solution of the 8-queens problem via permutation
% generation with incremental attack checks (Aquarius "queens_8").

main :-
    queens(8, Qs),
    len(Qs, 8).

queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).

place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    sel(Q, Unplaced, Unplaced1),
    not_attack(Safe, Q, 1),
    place(Unplaced1, [Q|Safe], Qs).

not_attack([], _, _).
not_attack([Y|Ys], X, N) :-
    X =\= Y + N,
    X =\= Y - N,
    N1 is N + 1,
    not_attack(Ys, X, N1).

sel(X, [X|T], T).
sel(X, [Y|T], [Y|R]) :- sel(X, T, R).

range(N, N, [N]).
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).

len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
