//! # symbol-fuzz
//!
//! Differential fuzzing of the SYMBOL evaluation pipeline.
//!
//! The evaluation system executes the same program on four engines
//! that must agree: the legacy op-at-a-time [`symbol_intcode::Emulator`],
//! the pre-decoded [`symbol_intcode::DecodedEmulator`], and — after
//! compaction — the validating [`symbol_vliw::VliwSim`] and the
//! pre-decoded [`symbol_vliw::DecodedVliwSim`]. This crate generates
//! deterministic random inputs at two levels and checks the whole
//! matrix:
//!
//! * [`gen_prolog`] — well-formed Prolog programs with a
//!   generator-computed expected outcome, driven through the full
//!   parse → BAM → IntCode pipeline;
//! * [`gen_intcode`] — raw IntCode fragments (register-typed,
//!   branch-target-closed) fed directly to the engines.
//!
//! A failing case is [`shrink`]-reduced to a minimal reproducer and
//! written in the [`corpus`] text format; checked-in reproducers under
//! `crates/fuzz/corpus/` replay as ordinary tests. The `fuzz_run`
//! binary drives the whole loop from the command line and from CI.

pub mod corpus;
pub mod driver;
pub mod gen_intcode;
pub mod gen_prolog;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::{CorpusCase, Expect};
pub use driver::{run_fuzz, FuzzOptions, FuzzReport, KindFilter};
pub use gen_intcode::IntFrag;
pub use gen_prolog::PrologCase;
pub use oracle::{run_case, Case, Failure, FailureKind, OracleConfig};
pub use rng::{parse_seed, Rng};
pub use shrink::shrink_case;
