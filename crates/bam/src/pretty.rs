//! Human-readable BAM code listings (for debugging, golden tests and
//! the examples).

use symbol_prolog::SymbolTable;

use crate::instr::{BamInstr, Const, Operand, Slot};
use crate::program::BamProgram;

fn op(o: Operand, s: &SymbolTable) -> String {
    match o {
        Operand::Slot(sl) => sl.to_string(),
        Operand::Const(c) => c.display(s),
    }
}

fn slot(sl: Slot) -> String {
    sl.to_string()
}

/// Renders one instruction.
pub fn instr(i: &BamInstr, s: &SymbolTable) -> String {
    use BamInstr::*;
    match i {
        Label(l) => format!("{l}:"),
        Jump(l) => format!("    jump {l}"),
        Fail => "    fail".into(),
        Call(p) => format!("    call {}", p.display(s)),
        Execute(p) => format!("    execute {}", p.display(s)),
        Proceed => "    proceed".into(),
        Allocate(n) => format!("    allocate {n}"),
        Deallocate => "    deallocate".into(),
        Try {
            arity,
            first,
            retry,
        } => format!("    try/{arity} {first} retry={retry}"),
        Retry { arity, alt, retry } => format!("    retry/{arity} {alt} retry={retry}"),
        Trust { arity, alt } => format!("    trust/{arity} {alt}"),
        SwitchOnTerm {
            arg,
            scratch,
            var,
            cons,
            lst,
            strct,
        } => format!(
            "    switch_on_term a{arg} ({scratch}) var={var} const={cons} list={lst} struct={strct}"
        ),
        SwitchOnConst {
            slot: sl,
            table,
            default,
        } => {
            let entries: Vec<String> = table
                .iter()
                .map(|(c, l)| format!("{}→{l}", c.display(s)))
                .collect();
            format!(
                "    switch_on_const {} [{}] else {default}",
                slot(*sl),
                entries.join(", ")
            )
        }
        SwitchOnStruct {
            slot: sl,
            table,
            default,
        } => {
            let entries: Vec<String> = table
                .iter()
                .map(|(f, l)| format!("{}/{}→{l}", s.name(f.name), f.arity))
                .collect();
            format!(
                "    switch_on_struct {} [{}] else {default}",
                slot(*sl),
                entries.join(", ")
            )
        }
        SetCutBarrier => "    set_cut_barrier".into(),
        SaveCutBarrier(y) => format!("    save_cut_barrier {}", slot(*y)),
        Cut(None) => "    cut".into(),
        Cut(Some(y)) => format!("    cut {}", slot(*y)),
        Move { src, dst } => format!("    move {} -> {}", op(*src, s), slot(*dst)),
        MoveUnsafe { src, dst } => {
            format!("    move_unsafe {} -> {}", slot(*src), slot(*dst))
        }
        Deref { src, dst } => format!("    deref {} -> {}", slot(*src), slot(*dst)),
        LoadArg { base, idx, dst } => {
            format!("    load_arg {}[{idx}] -> {}", slot(*base), slot(*dst))
        }
        BranchVar { slot: sl, target } => format!("    if_var {} -> {target}", slot(*sl)),
        BranchNotTag {
            slot: sl,
            tag,
            target,
        } => format!("    if_not_{tag:?} {} -> {target}", slot(*sl)).to_lowercase(),
        BranchNotConst {
            slot: sl,
            c,
            target,
        } => {
            format!("    if_not {} = {} -> {target}", slot(*sl), c.display(s))
        }
        BranchNotFunctor {
            slot: sl,
            f,
            target,
        } => format!(
            "    if_not_functor {} = {}/{} -> {target}",
            slot(*sl),
            s.name(f.name),
            f.arity
        ),
        BindConst { var, c } => format!("    bind {} <- {}", slot(*var), c.display(s)),
        BindSlot { var, value } => format!("    bind {} <- {}", slot(*var), slot(*value)),
        NewList { dst } => format!("    new_list -> {}", slot(*dst)),
        NewStruct { dst, f } => format!(
            "    new_struct {}/{} -> {}",
            s.name(f.name),
            f.arity,
            slot(*dst)
        ),
        PushConst { c } => format!("    push {}", c.display(s)),
        PushValue { src } => format!("    push {}", slot(*src)),
        PushFresh { dst } => format!("    push_fresh -> {}", slot(*dst)),
        GeneralUnify { a, b } => format!("    unify {} {}", slot(*a), slot(*b)),
        StructEqBranch {
            a,
            b,
            want_equal,
            target,
        } => format!(
            "    if {} {} {} -> {target}",
            slot(*a),
            if *want_equal { "\\==" } else { "==" },
            slot(*b)
        ),
        DerefInt { src, dst } => format!("    deref_int {} -> {}", slot(*src), slot(*dst)),
        Arith { op: o, a, b, dst } => {
            format!("    {:?} {} {} -> {}", o, op(*a, s), op(*b, s), slot(*dst)).to_lowercase()
        }
        BranchCmpFalse { cmp, a, b, target } => format!(
            "    unless {} {:?} {} -> {target}",
            op(*a, s),
            cmp,
            op(*b, s)
        ),
        TypeTestBranch {
            slot: sl,
            test,
            target,
        } => format!("    unless_{test:?} {} -> {target}", slot(*sl)).to_lowercase(),
        Halt { success } => format!("    halt {success}"),
    }
}

/// Renders a whole program, one predicate per section.
pub fn program(p: &BamProgram, s: &SymbolTable) -> String {
    let mut out = String::new();
    for pred in p.predicates() {
        out.push_str(&format!("{}:\n", pred.id.display(s)));
        for i in &pred.code {
            out.push_str(&instr(i, s));
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders the constant `c` (re-exported convenience).
pub fn constant(c: Const, s: &SymbolTable) -> String {
    c.display(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_prolog::parse_program;

    fn listing(src: &str) -> String {
        let p = parse_program(src).unwrap();
        let bam = crate::compile(&p).unwrap();
        program(&bam, p.symbols())
    }

    #[test]
    fn fact_lists_as_proceed() {
        let l = listing("a.");
        assert!(l.contains("a/0:"), "{l}");
        assert!(l.contains("proceed"), "{l}");
        assert!(l.contains("set_cut_barrier"), "{l}");
    }

    #[test]
    fn two_clause_predicate_shows_chain() {
        let l = listing("p(1). p(2).");
        assert!(l.contains("switch_on_term"), "{l}");
        assert!(l.contains("switch_on_const"), "{l}");
    }

    #[test]
    fn tail_call_shows_execute() {
        let l = listing("p(X) :- q(X). q(_).");
        assert!(l.contains("execute q/1"), "{l}");
        assert!(
            !l.split("p/1:")
                .nth(1)
                .unwrap()
                .split("q/1:")
                .next()
                .unwrap()
                .contains("call "),
            "{l}"
        );
    }

    #[test]
    fn environment_shown_for_two_calls() {
        let l = listing("p :- q, r. q. r.");
        assert!(l.contains("allocate"), "{l}");
        assert!(l.contains("deallocate"), "{l}");
        assert!(l.contains("call q/0"), "{l}");
        assert!(l.contains("execute r/0"), "{l}");
    }

    #[test]
    fn head_structure_shows_both_modes() {
        let l = listing("p(f(X)) :- q(X). q(_).");
        assert!(l.contains("if_not_functor"), "{l}");
        assert!(l.contains("new_struct f/1"), "{l}");
        assert!(l.contains("load_arg"), "{l}");
    }
}
