//! Shape assertions against the paper's evaluation: the reproduction
//! does not have to match absolute numbers, but who wins, by roughly
//! what factor, and where the curves bend must hold. A fast subset
//! runs by default; `cargo test -- --ignored` checks the full suite.

use symbol_core::benchmarks;
use symbol_core::experiments::{measure, reports, BenchResult};

fn measure_subset(names: &[&str]) -> Vec<BenchResult> {
    names
        .iter()
        .map(|n| measure(benchmarks::by_name(n).expect("known")).expect("measures"))
        .collect()
}

fn assert_shapes(results: &[BenchResult]) {
    let n = results.len() as f64;
    let avg = |f: &dyn Fn(&BenchResult) -> f64| results.iter().map(f).sum::<f64>() / n;

    // Figure 2: memory takes roughly a third of execution (paper: 32%).
    let mem = avg(&|r| r.mix.memory);
    assert!(
        (0.20..=0.45).contains(&mem),
        "memory fraction {mem:.3} far from the paper's ~0.32"
    );

    // Section 4.3: branches are frequent (paper: >15%).
    let ctl = avg(&|r| r.mix.control);
    assert!(ctl > 0.15, "control fraction {ctl:.3} not >15%");

    // Table 2 / Figure 4: Prolog branches are predictable — the 90/50
    // rule does NOT hold (average P_fp far below 0.25).
    let pfp = avg(&|r| r.pfp_average);
    assert!(
        pfp < 0.25,
        "P_fp {pfp:.3} not clearly below the coin-flip regime"
    );

    // Table 1: global compaction clearly beats basic blocks, and the
    // trace speed-up sits in the paper's 1.6–3.2 per-benchmark band.
    for r in results {
        let (tr, bb) = r.unbounded_speedups();
        assert!(
            tr > bb,
            "{}: trace {tr:.2} not above basic-block {bb:.2}",
            r.name
        );
        assert!(
            (1.3..=3.5).contains(&tr),
            "{}: trace speed-up {tr:.2} outside the plausible band",
            r.name
        );
    }

    // Table 1: traces are substantially longer than basic blocks.
    let tlen = avg(&|r| r.trace_length);
    let blen = avg(&|r| r.block_length);
    assert!(
        tlen > 1.5 * blen,
        "traces ({tlen:.1}) not substantially longer than blocks ({blen:.1})"
    );

    // Table 3 / Figure 6: more units never hurt; the gain from 3→5
    // units is marginal (speed-up saturates, as Amdahl forecasts);
    // everything stays under the shared-memory ceiling 1/m.
    for r in results {
        for u in 2..=5 {
            assert!(
                r.unit_speedup(u) + 0.03 >= r.unit_speedup(u - 1),
                "{}: {u} units slower than {}",
                r.name,
                u - 1
            );
        }
        let ceiling = 1.0 / r.mix.memory;
        assert!(
            r.unit_speedup(5) <= ceiling + 0.25,
            "{}: speed-up {:.2} above the Amdahl ceiling {ceiling:.2}",
            r.name,
            r.unit_speedup(5)
        );
    }
    let gain_12 = avg(&|r| r.unit_speedup(2) - r.unit_speedup(1));
    let gain_35 = avg(&|r| r.unit_speedup(5) - r.unit_speedup(3));
    assert!(
        gain_35 < gain_12 / 2.0,
        "no saturation: 3→5 gain {gain_35:.3} vs 1→2 gain {gain_12:.3}"
    );

    // Table 5: the BAM lands between sequential and the 3-unit VLIW.
    for r in results {
        assert!(r.bam_speedup() > 1.0, "{}: BAM below sequential", r.name);
        assert!(
            r.unit_speedup(3) > r.bam_speedup(),
            "{}: SYMBOL-3 not above the BAM",
            r.name
        );
    }
}

#[test]
fn shapes_hold_on_fast_subset() {
    let results = measure_subset(&[
        "conc30",
        "nreverse",
        "ops8",
        "qsort",
        "serialise",
        "times10",
    ]);
    assert_shapes(&results);
}

#[test]
#[ignore = "full-suite measurement; run with --ignored (release recommended)"]
fn shapes_hold_on_full_suite() {
    let results: Vec<BenchResult> = benchmarks::ALL
        .iter()
        .map(|b| measure(b).expect("measures"))
        .collect();
    assert_shapes(&results);
    // the full report renders without panicking
    let report = reports::full_report(&results);
    assert!(report.contains("Table 3"));
}
