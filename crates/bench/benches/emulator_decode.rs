//! Legacy vs pre-decoded engine timing: runs the timing subset through
//! the op-at-a-time [`symbol_intcode::Emulator`] and the micro-op
//! [`symbol_intcode::DecodedEmulator`] (and the two VLIW simulators)
//! and reports the step-throughput speedup. Writes the per-benchmark
//! numbers to `BENCH_emulator.json` at the workspace root.
//!
//! With `--check`, exits nonzero if the decoded emulator's geometric
//! mean speedup over the subset drops below 1.0× — the CI
//! `timing-smoke` gate that keeps the default engine from regressing
//! behind the legacy path it replaced — or if running through the
//! observability layer with a [`Registry::disabled`] costs more than
//! [`MAX_OBS_OVERHEAD`] over the plain engine (the zero-cost-when-off
//! guarantee of `symbol-obs`, measured on the same machine in the same
//! process rather than against a stale cross-machine baseline).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use symbol_bench::timing::Harness;
use symbol_bench::TIMING_SUBSET;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;
use symbol_intcode::{DecodedEmulator, Emulator, ExecConfig, Layout};
use symbol_obs::Registry;
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, VliwSim};

/// Largest tolerated geomean slowdown of the disabled-observability
/// path over the plain engine (2%).
const MAX_OBS_OVERHEAD: f64 = 0.02;

/// One benchmark's legacy/decoded emulator comparison.
struct Row {
    name: &'static str,
    steps: u64,
    legacy: Duration,
    decoded: Duration,
    /// The same decoded run through `run_sequential_obs` with a
    /// disabled registry — the instrumented-but-off product path.
    obs_off: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.as_secs_f64() / self.decoded.as_secs_f64()
    }

    /// Fractional cost of the disabled observability layer (0.01 = 1%
    /// slower than the plain engine; negative = within noise).
    fn obs_overhead(&self) -> f64 {
        self.obs_off.as_secs_f64() / self.decoded.as_secs_f64() - 1.0
    }

    fn steps_per_sec(&self, mean: Duration) -> f64 {
        self.steps as f64 / mean.as_secs_f64()
    }
}

/// Arenas just big enough for the timing subset. Every `Emulator::new`
/// zeroes the whole data memory; with the default ~3.6M-word layout
/// that allocation dominates the per-iteration time for *both* engines
/// and hides the step-loop difference this bench exists to measure.
fn small_layout() -> Layout {
    Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 10,
    }
}

fn measure(h: &mut Harness) -> Vec<Row> {
    let mut rows = Vec::new();
    for &name in TIMING_SUBSET {
        let src = benchmarks::by_name(name).expect("known benchmark").source;
        let c = Compiled::from_source_with_layout(src, small_layout()).expect("compiles");
        let run = c.run_sequential().expect("profiling run");
        let cfg = ExecConfig::default();

        h.bench_function(&format!("emulator/legacy/{name}"), |b| {
            b.iter(|| Emulator::new(&c.ici, &c.layout).run(&cfg).expect("runs"))
        });
        h.bench_function(&format!("emulator/decoded/{name}"), |b| {
            b.iter(|| {
                DecodedEmulator::new(&c.decoded, &c.layout)
                    .run(&cfg)
                    .expect("runs")
            })
        });
        let off = Registry::disabled();
        h.bench_function(&format!("emulator/obs-off/{name}"), |b| {
            b.iter(|| c.run_sequential_obs(&off, name).expect("runs"))
        });
        let n = h.samples().len();
        rows.push(Row {
            name,
            steps: run.steps,
            legacy: h.samples()[n - 3].mean,
            decoded: h.samples()[n - 2].mean,
            obs_off: h.samples()[n - 1].mean,
        });

        // VLIW side of the tentpole: same comparison on the scheduled
        // code (timed, reported in the JSON's sidecar section, but not
        // part of the --check gate — the emulator dominates runtime).
        let machine = MachineConfig::units(3);
        let compacted = compact(
            &c.ici,
            &run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let sim_cfg = SimConfig::default();
        h.bench_function(&format!("vliw/legacy/{name}"), |b| {
            b.iter(|| {
                VliwSim::new(&compacted.program, machine, &c.layout)
                    .run(&sim_cfg)
                    .expect("simulates")
            })
        });
        let lowered = DecodedVliw::new(&compacted.program, machine);
        h.bench_function(&format!("vliw/decoded/{name}"), |b| {
            b.iter(|| {
                DecodedVliwSim::new(&lowered, &c.layout)
                    .run(&sim_cfg)
                    .expect("simulates")
            })
        });
    }
    rows
}

fn geomean_speedup(rows: &[Row]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| r.speedup().ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Geomean of the obs-off/plain time ratios, expressed as an overhead
/// fraction.
fn geomean_obs_overhead(rows: &[Row]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| (1.0 + r.obs_overhead()).ln()).sum();
    (log_sum / rows.len() as f64).exp() - 1.0
}

fn write_report(rows: &[Row], h: &Harness, geomean: f64, obs_overhead: f64) {
    let mut out = String::from("{\n  \"emulator\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"steps\": {}, \"legacy_ns\": {}, \"decoded_ns\": {}, \
             \"obs_off_ns\": {}, \"legacy_steps_per_sec\": {:.0}, \
             \"decoded_steps_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"obs_overhead\": {:.4}}}{sep}",
            r.name,
            r.steps,
            r.legacy.as_nanos(),
            r.decoded.as_nanos(),
            r.obs_off.as_nanos(),
            r.steps_per_sec(r.legacy),
            r.steps_per_sec(r.decoded),
            r.speedup(),
            r.obs_overhead(),
        );
    }
    let _ = write!(out, "  ],\n  \"vliw\": [\n");
    let vliw: Vec<_> = h
        .samples()
        .iter()
        .filter(|s| s.name.starts_with("vliw/"))
        .collect();
    for (i, s) in vliw.iter().enumerate() {
        let sep = if i + 1 == vliw.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mean_ns\": {}}}{sep}",
            s.name,
            s.mean.as_nanos()
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"emulator_geomean_speedup\": {geomean:.3},\n  \
         \"obs_off_geomean_overhead\": {obs_overhead:.4}\n}}\n"
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_emulator.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut h = Harness::new();
    let rows = measure(&mut h);
    let geomean = geomean_speedup(&rows);
    let obs_overhead = geomean_obs_overhead(&rows);
    write_report(&rows, &h, geomean, obs_overhead);
    for r in &rows {
        println!(
            "{:<10} {:>12} steps  legacy {:>9.2} Msteps/s  decoded {:>9.2} Msteps/s  {:>5.2}x  \
             obs-off {:>+6.2}%",
            r.name,
            r.steps,
            r.steps_per_sec(r.legacy) / 1e6,
            r.steps_per_sec(r.decoded) / 1e6,
            r.speedup(),
            r.obs_overhead() * 100.0
        );
    }
    println!("emulator geomean speedup: {geomean:.3}x");
    println!(
        "disabled-observability geomean overhead: {:+.2}% (limit {:.0}%)",
        obs_overhead * 100.0,
        MAX_OBS_OVERHEAD * 100.0
    );
    h.final_summary();
    if check && geomean < 1.0 {
        eprintln!("FAIL: decoded emulator is slower than legacy (geomean {geomean:.3}x < 1.0x)");
        std::process::exit(1);
    }
    if check && obs_overhead > MAX_OBS_OVERHEAD {
        eprintln!(
            "FAIL: disabled observability costs {:.2}% over the plain engine (limit {:.0}%)",
            obs_overhead * 100.0,
            MAX_OBS_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
}
