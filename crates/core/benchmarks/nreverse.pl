% nreverse -- naive reverse of a 30-element list (the classic LIPS
% benchmark; "reverse" in the paper's tables).

main :-
    nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
          16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],
         R),
    R = [30,29,28,27,26,25,24,23,22,21,20,19,18,17,16,
         15,14,13,12,11,10,9,8,7,6,5,4,3,2,1].

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), conc(RT, [H], R).

conc([], L, L).
conc([X|T], L, [X|R]) :- conc(T, L, R).
