#![allow(clippy::needless_range_loop)] // index loops mirror the DAG math

//! Control-flow graph over IntCode programs.

use std::collections::{HashMap, HashSet};

use symbol_intcode::{ExecStats, IciProgram, Label, Op};

/// Outgoing edge of a basic block.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Edge {
    /// Fall-through to the next block.
    Fall(usize),
    /// Taken branch/jump to a labelled block.
    Taken(usize),
}

impl Edge {
    /// The destination block.
    pub fn dest(self) -> usize {
        match self {
            Edge::Fall(b) | Edge::Taken(b) => b,
        }
    }
}

/// One basic block: the op range `[start, end)`.
#[derive(Clone, Debug)]
pub struct Block {
    /// First op index.
    pub start: usize,
    /// One past the last op index.
    pub end: usize,
    /// Successor edges (at most a fall-through and a taken edge).
    pub succs: Vec<Edge>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
    /// Execution count (the Expect of the first op).
    pub expect: u64,
    /// Probability that the terminating conditional branch is taken
    /// (`None` for non-branch terminators or never-executed blocks).
    pub taken_prob: Option<f64>,
    /// Whether some label bound at `start` is address-taken (the block
    /// can be entered by an indirect jump).
    pub address_taken: bool,
}

impl Block {
    /// Number of ops in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in layout order.
    pub blocks: Vec<Block>,
    /// Block id containing each op.
    pub block_of_op: Vec<usize>,
    /// Block whose first op each bound label points at.
    pub label_block: HashMap<Label, usize>,
}

impl Cfg {
    /// Builds the CFG of `program`, annotated with `stats`.
    pub fn build(program: &IciProgram, stats: &ExecStats) -> Cfg {
        let ops = program.ops();
        let n = ops.len();

        // Leaders: entry, every bound label, every op after a control op.
        let mut leader = vec![false; n + 1];
        leader[program.label_addr(program.entry())] = true;
        for (lid, &addr) in program.label_table().iter().enumerate() {
            let _ = lid;
            if addr != usize::MAX && addr < n {
                leader[addr] = true;
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if op.is_control() && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        leader[0] = true;

        // Block ranges.
        let mut starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        starts.push(n);
        let address_taken: HashSet<usize> = program
            .address_taken()
            .iter()
            .map(|&l| program.label_addr(l))
            .collect();

        let mut blocks = Vec::with_capacity(starts.len() - 1);
        let mut block_of_op = vec![0usize; n];
        let mut start_block: HashMap<usize, usize> = HashMap::new();
        for w in starts.windows(2) {
            let (s, e) = (w[0], w[1]);
            let id = blocks.len();
            start_block.insert(s, id);
            for i in s..e {
                block_of_op[i] = id;
            }
            blocks.push(Block {
                start: s,
                end: e,
                succs: Vec::new(),
                preds: Vec::new(),
                expect: stats.expect[s],
                taken_prob: None,
                address_taken: address_taken.contains(&s),
            });
        }

        // Successors.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
        for id in 0..blocks.len() {
            let last = blocks[id].end - 1;
            let op = &ops[last];
            let mut succs = Vec::new();
            match op {
                Op::Jmp { t } => {
                    succs.push(Edge::Taken(start_block[&program.label_addr(*t)]));
                }
                Op::JmpR { .. } | Op::Halt { .. } => {}
                o if o.is_control() => {
                    // conditional branch
                    let t = o.target().expect("conditional branches have targets");
                    succs.push(Edge::Taken(start_block[&program.label_addr(t)]));
                    if last + 1 < n {
                        succs.push(Edge::Fall(block_of_op[last + 1]));
                    }
                    blocks[id].taken_prob = stats.taken_probability(program, last);
                }
                _ => {
                    if last + 1 < n {
                        succs.push(Edge::Fall(block_of_op[last + 1]));
                    }
                }
            }
            for e in &succs {
                preds[e.dest()].push(id);
            }
            blocks[id].succs = succs;
        }
        for (id, p) in preds.into_iter().enumerate() {
            blocks[id].preds = p;
        }

        // Label → block.
        let mut label_block = HashMap::new();
        for (lid, &addr) in program.label_table().iter().enumerate() {
            if addr != usize::MAX && addr < n {
                label_block.insert(Label(lid as u32), start_block[&addr]);
            }
        }

        Cfg {
            blocks,
            block_of_op,
            label_block,
        }
    }

    /// Probability of following `edge` out of `block`.
    pub fn edge_prob(&self, block: usize, edge: Edge) -> f64 {
        let b = &self.blocks[block];
        match (edge, b.taken_prob) {
            (Edge::Taken(_), Some(p)) => p,
            (Edge::Fall(_), Some(p)) => 1.0 - p,
            // unconditional or never-executed: single edges carry it all
            _ => {
                if b.succs.len() == 1 {
                    1.0
                } else {
                    0.5
                }
            }
        }
    }

    /// Dynamic average basic-block length (ops per executed block).
    pub fn average_block_length(&self) -> f64 {
        let mut ops = 0u64;
        let mut entries = 0u64;
        for b in &self.blocks {
            ops += b.expect * b.len() as u64;
            entries += b.expect;
        }
        if entries == 0 {
            0.0
        } else {
            ops as f64 / entries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Asm, Cond, Op, Operand, Word};

    fn sample() -> (IciProgram, ExecStats) {
        // entry: r = 0; loop: r += 1; if r < 3 goto loop; halt
        let mut a = Asm::new();
        let entry = a.fresh_label();
        let lp = a.fresh_label();
        let r = a.fresh_reg();
        a.bind(entry);
        a.emit(Op::MvI {
            d: r,
            w: Word::int(0),
        });
        a.bind(lp);
        a.emit(Op::Alu {
            op: symbol_intcode::AluOp::Add,
            d: r,
            a: r,
            b: Operand::Imm(1),
        });
        a.emit(Op::Br {
            cond: Cond::Lt,
            a: r,
            b: Operand::Imm(3),
            t: lp,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        let layout = symbol_intcode::Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let stats = symbol_intcode::Emulator::new(&p, &layout)
            .run(&symbol_intcode::ExecConfig::default())
            .unwrap()
            .stats;
        (p, stats)
    }

    #[test]
    fn builds_loop_cfg() {
        let (p, stats) = sample();
        let cfg = Cfg::build(&p, &stats);
        // blocks: [mvi], [add, br], [halt]
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].len(), 1);
        assert_eq!(cfg.blocks[1].len(), 2);
        // loop block has a back edge to itself and a fall edge
        let succs = &cfg.blocks[1].succs;
        assert!(succs.contains(&Edge::Taken(1)));
        assert!(succs.contains(&Edge::Fall(2)));
        // executed 3 times, taken twice
        assert_eq!(cfg.blocks[1].expect, 3);
        let p_taken = cfg.blocks[1].taken_prob.unwrap();
        assert!((p_taken - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn preds_are_recorded() {
        let (p, stats) = sample();
        let cfg = Cfg::build(&p, &stats);
        assert_eq!(cfg.blocks[1].preds.len(), 2); // entry + itself
        assert_eq!(cfg.blocks[2].preds, vec![1]);
    }

    #[test]
    fn edge_probabilities_sum_to_one() {
        let (p, stats) = sample();
        let cfg = Cfg::build(&p, &stats);
        let b = 1;
        let total: f64 = cfg.blocks[b]
            .succs
            .iter()
            .map(|&e| cfg.edge_prob(b, e))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
