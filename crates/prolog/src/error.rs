//! Front-end error type.

use std::error::Error;
use std::fmt;

/// Error produced while tokenizing or parsing Prolog source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at the given source position.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "syntax error at 3:7: unexpected token");
    }
}
