//! Times the suite measurement sequentially and on the parallel
//! driver, verifying the results are bit-identical (the determinism
//! guarantee of `experiments::measure_all_with`).
//!
//! ```sh
//! cargo run --release -p symbol-core --example measure_timing
//! cargo run --release -p symbol-core --example measure_timing -- --json
//! ```

use std::time::Instant;

use symbol_core::experiments::measure_all_with;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = Instant::now();
    let sequential = measure_all_with(1).expect("suite measures");
    let seq_time = t0.elapsed();

    let t1 = Instant::now();
    let parallel = measure_all_with(threads).expect("suite measures");
    let par_time = t1.elapsed();

    assert_eq!(
        sequential, parallel,
        "parallel driver must be bit-identical"
    );
    let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64();

    if json {
        println!(
            "{{\"threads\": {threads}, \"benchmarks\": {}, \
             \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {speedup:.3}, \"bit_identical\": true}}",
            parallel.len(),
            seq_time.as_secs_f64() * 1e3,
            par_time.as_secs_f64() * 1e3
        );
        return;
    }

    println!("sequential (1 thread):   {seq_time:?}");
    println!("parallel ({threads} threads):  {par_time:?}");
    println!(
        "speed-up: {:.2}x (bit-identical results over {} benchmarks)",
        speedup,
        parallel.len()
    );
}
