//! Replays every checked-in reproducer under `crates/fuzz/corpus/`.
//!
//! Each file declares what the oracle must conclude: `expect: pass`
//! files are regression tests for fixed bugs (and for oracle soundness
//! on tricky-but-correct cases); `expect: fail <tag>` files pin open
//! findings to their exact classification, so a half-fix that shifts
//! the failure mode is caught.

use symbol_fuzz::oracle::{run_case, OracleConfig};
use symbol_fuzz::{corpus, Expect};

#[test]
fn every_corpus_case_replays_as_declared() {
    let dir = corpus::corpus_dir();
    let cases = corpus::load_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus under {} is malformed: {e}", dir.display()));
    assert!(
        !cases.is_empty(),
        "no corpus files found under {}",
        dir.display()
    );
    let cfg = OracleConfig::default();
    for c in &cases {
        let got = run_case(&c.case, &cfg);
        match (&c.expect, got) {
            (Expect::Pass, Ok(())) => {}
            (Expect::Pass, Err(f)) => panic!(
                "{}: expected to pass, oracle found [{}] {}",
                c.name,
                f.kind.tag(),
                f.detail
            ),
            (Expect::Fail(want), Ok(())) => panic!(
                "{}: expected to fail with [{}], but the oracle accepted it \
                 (bug fixed? flip the file to 'expect: pass')",
                c.name,
                want.tag()
            ),
            (Expect::Fail(want), Err(f)) => {
                assert_eq!(
                    *want,
                    f.kind,
                    "{}: failure kind drifted: expected [{}], got [{}] {}",
                    c.name,
                    want.tag(),
                    f.kind.tag(),
                    f.detail
                );
            }
        }
    }
}

#[test]
fn corpus_files_round_trip_through_the_serializer() {
    let cases = corpus::load_dir(&corpus::corpus_dir()).expect("corpus parses");
    for c in &cases {
        let rendered = corpus::render(&c.case, &c.expect, c.seed, c.failure.as_deref());
        let back = corpus::parse(&c.name, &rendered)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", c.name));
        assert_eq!(back.case, c.case, "{}", c.name);
        assert_eq!(back.expect, c.expect, "{}", c.name);
    }
}
