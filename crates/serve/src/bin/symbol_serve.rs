//! `symbol-serve` — artifact-cache and query-server driver.
//!
//! ```text
//! symbol-serve --cache-dir DIR [options]
//!
//!   --cache-dir DIR      artifact cache directory (required)
//!   --benches a,b,c      benchmark subset (default: all)
//!   --queries N          queries per benchmark (default 16)
//!   --batch N            submit queries as batched run requests of N
//!                        sub-queries each (pooled engine state, one
//!                        request per batch) instead of one request
//!                        per query; answers are checked to be
//!                        bit-identical across the whole batch
//!   --workers N          worker threads (default 4)
//!   --metrics PATH       write a metrics.json snapshot here
//!   --fused              serve the profile-guided fused tier: each
//!                        benchmark is profiled, its fused artifact
//!                        loaded (or built and stored), and queries
//!                        run on the fused program
//!   --expect-all-hits    fail unless every load was a cache hit
//!                        (zero misses, zero corrupt entries, zero
//!                        compiles; with --fused, also a fused-tier
//!                        hit per benchmark) — the CI warm-restart
//!                        check
//!   --stats              issue a live Stats query per benchmark from
//!                        the running pool and print the per-stage
//!                        quantiles; fails unless every p99 is present
//!                        and finite
//!   --flight-dir DIR     enable flight-recorder incident dumps into
//!                        DIR (slow queries and panics)
//!   --slow-us N          execute-time threshold (microseconds) that
//!                        marks a query slow and triggers a dump
//! ```
//!
//! Each selected benchmark is loaded through the cache (deserialized
//! on a warm start, compiled-and-stored on a cold one) and then served
//! `--queries` independent queries by a worker pool sharing the one
//! immutable image. Every query is self-checking; any failure makes
//! the process exit nonzero.
//!
//! One flight-recorder ring is shared by the artifact cache and every
//! per-benchmark server, so an incident dump shows the cache and
//! query traffic interleaved.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use symbol_core::benchmarks;
use symbol_intcode::Layout;
use symbol_obs::{FlightRecorder, Registry};
use symbol_serve::cache::ArtifactCache;
use symbol_serve::server::{QueryAnswer, QueryServer, ServerConfig};

struct Args {
    cache_dir: String,
    benches: Option<Vec<String>>,
    queries: u64,
    batch: Option<usize>,
    workers: usize,
    metrics: Option<String>,
    fused: bool,
    expect_all_hits: bool,
    stats: bool,
    flight_dir: Option<PathBuf>,
    slow_us: Option<u64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: symbol-serve --cache-dir DIR [--benches a,b,c] [--queries N] \
         [--batch N] [--workers N] [--metrics PATH] [--fused] [--expect-all-hits] \
         [--stats] [--flight-dir DIR] [--slow-us N]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        cache_dir: String::new(),
        benches: None,
        queries: 16,
        batch: None,
        workers: 4,
        metrics: None,
        fused: false,
        expect_all_hits: false,
        stats: false,
        flight_dir: None,
        slow_us: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cache-dir" => args.cache_dir = it.next()?,
            "--benches" => {
                args.benches = Some(it.next()?.split(',').map(str::to_string).collect());
            }
            "--queries" => args.queries = it.next()?.parse().ok()?,
            "--batch" => args.batch = Some(it.next()?.parse::<usize>().ok().filter(|n| *n > 0)?),
            "--workers" => args.workers = it.next()?.parse().ok()?,
            "--metrics" => args.metrics = Some(it.next()?),
            "--fused" => args.fused = true,
            "--expect-all-hits" => args.expect_all_hits = true,
            "--stats" => args.stats = true,
            "--flight-dir" => args.flight_dir = Some(PathBuf::from(it.next()?)),
            "--slow-us" => args.slow_us = Some(it.next()?.parse().ok()?),
            _ => return None,
        }
    }
    if args.cache_dir.is_empty() {
        return None;
    }
    Some(args)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let obs = Registry::new();
    let flight = Arc::new(FlightRecorder::new(4096));
    let cache = match ArtifactCache::new(&args.cache_dir, obs.clone()) {
        Ok(c) => c.with_flight(Arc::clone(&flight)),
        Err(e) => {
            eprintln!("symbol-serve: cannot open cache {}: {e}", args.cache_dir);
            return ExitCode::FAILURE;
        }
    };

    let selected: Vec<&benchmarks::Benchmark> = match &args.benches {
        None => benchmarks::ALL.iter().collect(),
        Some(names) => {
            let mut v = Vec::new();
            for name in names {
                match benchmarks::by_name(name) {
                    Some(b) => v.push(b),
                    None => {
                        eprintln!("symbol-serve: unknown benchmark {name}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            v
        }
    };

    let mut failed = false;
    for b in &selected {
        // The shared loaders run behind the cache's single-flight
        // guard, so restarting with many benchmarks warm never decodes
        // an artifact more than once per key.
        let loaded = if args.fused {
            cache.load_compiled_fused_shared(b.source, Layout::default())
        } else {
            cache.load_compiled_shared(b.source, Layout::default())
        };
        let compiled = match loaded {
            Ok(c) => c,
            Err(e) => {
                eprintln!("symbol-serve: {}: {e}", b.name);
                failed = true;
                continue;
            }
        };
        let path = match (compiled.front.is_none(), compiled.fused.is_some()) {
            (true, true) => "warm (fused)",
            (true, false) => "warm (deserialized)",
            (false, true) => "cold (compiled, fused)",
            (false, false) => "cold (compiled)",
        };
        let server = QueryServer::start_with_flight(
            compiled,
            &ServerConfig {
                workers: args.workers,
                flight_dir: args.flight_dir.clone(),
                slow_query_ns: args.slow_us.map(|us| us * 1000),
                ..ServerConfig::default()
            },
            &obs,
            Arc::clone(&flight),
        );
        let requests = match args.batch {
            Some(bs) => {
                let mut remaining = args.queries as usize;
                let mut id = 0;
                while remaining > 0 {
                    let n = remaining.min(bs);
                    server.submit_batch(id, n);
                    id += 1;
                    remaining -= n;
                }
                id
            }
            None => {
                for id in 0..args.queries {
                    server.submit(id);
                }
                args.queries
            }
        };
        let stats_id = args.queries;
        if args.stats {
            server.submit_stats(stats_id);
        }
        let results = server.finish();
        let expected = requests + u64::from(args.stats);
        let errors = results.iter().filter(|r| r.outcome.is_err()).count();
        if let Some(bs) = args.batch {
            // Every sub-query of every batch must have run, and all of
            // them bit-identically (same deterministic step count).
            let steps: Vec<u64> = results
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .filter_map(QueryAnswer::batch)
                .flatten()
                .copied()
                .collect();
            let uniform = steps.windows(2).all(|w| w[0] == w[1]);
            println!(
                "{:<12} {path:<20} {requests} batch requests (x{bs}), \
                 {} queries, {errors} errors",
                b.name,
                steps.len()
            );
            if steps.len() as u64 != args.queries || !uniform {
                eprintln!(
                    "symbol-serve: {}: batched answers incomplete or diverged",
                    b.name
                );
                failed = true;
            }
        } else {
            println!(
                "{:<12} {path:<20} {} queries, {errors} errors",
                b.name,
                results.len()
            );
        }
        if errors > 0 || results.len() as u64 != expected {
            failed = true;
        }
        if args.stats {
            let report = results
                .iter()
                .find(|r| r.id == stats_id)
                .and_then(|r| r.outcome.as_ref().ok())
                .and_then(|a| a.stats());
            match report {
                Some(report) => {
                    let line = |label: &str, q: &Option<symbol_obs::QuantileView>| match q {
                        Some(q) => format!(
                            "{label} p50={:.1} p90={:.1} p99={:.1} max={}",
                            q.p50, q.p90, q.p99, q.max
                        ),
                        None => format!("{label} (no samples)"),
                    };
                    let hot: Vec<String> = report
                        .hot_pcs
                        .iter()
                        .map(|(pc, n)| format!("{pc}:{n}"))
                        .collect();
                    println!(
                        "  stats {}: {} | {} | {} | hot_pcs [{}]",
                        b.name,
                        line("execute", &report.execute),
                        line("queue_wait", &report.queue_wait),
                        line("select", &report.select),
                        hot.join(" ")
                    );
                    let p99_ok = report.execute.is_some_and(|q| q.is_finite() && q.count > 0);
                    if !p99_ok {
                        eprintln!("symbol-serve: {}: stats p99 missing or not finite", b.name);
                        failed = true;
                    }
                }
                None => {
                    eprintln!("symbol-serve: {}: no stats answer", b.name);
                    failed = true;
                }
            }
        }
    }

    if let Some(path) = &args.metrics {
        let json = obs.snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("symbol-serve: cannot write {path}: {e}");
            failed = true;
        }
    }

    if args.expect_all_hits {
        let get = |name: &str| obs.counter(name, &[("kind", "emu")]).get();
        let hits = get("serve.cache.hit");
        let misses = get("serve.cache.miss");
        let corrupt = get("serve.cache.corrupt");
        let compiles = obs
            .snapshot()
            .histograms
            .iter()
            .filter(|h| h.name == "span.serve.compile.ns")
            .map(|h| h.count)
            .sum::<u64>();
        println!("cache: {hits} hits, {misses} misses, {corrupt} corrupt, {compiles} compiles");
        if misses > 0 || corrupt > 0 || compiles > 0 || hits < selected.len() as u64 {
            eprintln!("symbol-serve: expected a fully warm cache");
            failed = true;
        }
        if args.fused {
            let fget = |name: &str| obs.counter(name, &[("kind", "fused")]).get();
            let fhits = fget("serve.cache.hit");
            let fmisses = fget("serve.cache.miss");
            let fcorrupt = fget("serve.cache.corrupt");
            println!("fused tier: {fhits} hits, {fmisses} misses, {fcorrupt} corrupt");
            if fmisses > 0 || fcorrupt > 0 || fhits < selected.len() as u64 {
                eprintln!("symbol-serve: expected a fully warm fused tier");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
