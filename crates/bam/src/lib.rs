//! # symbol-bam
//!
//! The BAM-style abstract machine layer of the SYMBOL evaluation
//! system: a RISC-grain instruction set ([`instr::BamInstr`]) and a
//! Prolog → BAM compiler with first-argument indexing and specialized
//! (mode-split) head unification, in the spirit of the Berkeley
//! Abstract Machine the paper builds on.
//!
//! The output of [`compile()`](crate::compile()) is consumed by `symbol-intcode`, which
//! expands each BAM instruction into IntCode operations.
//!
//! ```
//! use symbol_prolog::parse_program;
//! use symbol_bam::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R).")?;
//! let bam = compile(&program)?;
//! assert_eq!(bam.predicates().count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod compile;
pub mod error;
pub mod instr;
pub mod pretty;
pub mod program;
pub mod vars;

pub use compile::index::CompiledPred;
pub use error::CompileError;
pub use instr::{
    ArithOp, BamInstr, BamLabel, Cmp, Const, Functor, Operand, Slot, TagClass, TypeTest,
};
pub use program::BamProgram;

/// Compiles a normalized Prolog program to BAM code.
///
/// # Errors
///
/// See [`compile::compile_program`].
pub fn compile(program: &symbol_prolog::Program) -> Result<BamProgram, CompileError> {
    compile::compile_program(program)
}
