% query -- Warren's QUERY benchmark: scan a database of countries for
% pairs with population densities within 5% of each other. The workload
% enumerates every solution by failure-driven search, then the first
% solution is checked (indonesia/pakistan).

main :-
    allq,
    query([C1, _, C2, _]),
    C1 = indonesia,
    C2 = pakistan.

allq :- query(_), fail.
allq.

query([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    T1 is 20 * D1,
    T2 is 21 * D2,
    T1 < T2.

density(C, D) :-
    pop(C, P),
    area(C, A),
    D is P * 100 // A.

pop(china, 8250).      area(china, 3380).
pop(india, 5863).      area(india, 1139).
pop(ussr, 2521).       area(ussr, 8708).
pop(usa, 2119).        area(usa, 3609).
pop(indonesia, 1276).  area(indonesia, 570).
pop(brazil, 1042).     area(brazil, 3288).
pop(japan, 1097).      area(japan, 148).
pop(bangladesh, 750).  area(bangladesh, 55).
pop(pakistan, 682).    area(pakistan, 311).
pop(w_germany, 620).   area(w_germany, 96).
pop(nigeria, 613).     area(nigeria, 373).
pop(mexico, 581).      area(mexico, 764).
pop(uk, 559).          area(uk, 86).
pop(italy, 554).       area(italy, 116).
pop(france, 525).      area(france, 213).
pop(philippines, 415). area(philippines, 90).
pop(thailand, 410).    area(thailand, 200).
pop(turkey, 383).      area(turkey, 296).
pop(egypt, 364).       area(egypt, 386).
pop(spain, 352).       area(spain, 190).
pop(poland, 337).      area(poland, 121).
pop(s_korea, 335).     area(s_korea, 37).
pop(iran, 320).        area(iran, 628).
pop(ethiopia, 272).    area(ethiopia, 350).
pop(argentina, 251).   area(argentina, 1080).
