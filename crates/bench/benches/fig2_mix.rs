//! Figure 2 — dynamic instruction mix. Times the mix measurement on
//! profiled runs, then regenerates the figure for the full suite.

use std::hint::black_box;

use symbol_analysis::ClassMix;
use symbol_bench::timing::Harness;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_core::experiments::{measure_all, reports};

fn bench(h: &mut Harness) {
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        h.bench_function(&format!("fig2_mix/{name}"), |b| {
            b.iter(|| ClassMix::measure(black_box(&cc.ici), black_box(&run.stats)))
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::fig2_mix(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
