//! The BAM-style abstract instruction set.
//!
//! Instructions are deliberately lower-level than the WAM: head
//! unification is compiled into explicit dereference / tag-branch /
//! bind / push sequences with separate read- and write-mode code paths
//! (there is no unification mode flag at run time), which is the key
//! idea the Berkeley Abstract Machine brought to Prolog compilation and
//! what makes the code a good substrate for instruction scheduling.
//!
//! Each `BamInstr` later expands into a short sequence of IntCode
//! operations; the instruction boundary doubles as the compaction
//! barrier of the "BAM processor" cost model (see DESIGN.md).

use std::fmt;
use symbol_prolog::{Atom, PredId, SymbolTable};

/// A register slot visible to the BAM compiler.
///
/// `Arg(i)` and `Temp(k)` are machine registers; `Perm(k)` is the k-th
/// slot of the current environment frame (a memory location).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Slot {
    /// Argument register `A_i` (shared calling convention).
    Arg(usize),
    /// Clause-local temporary register `X_k`.
    Temp(usize),
    /// Permanent (environment) slot `Y_k`.
    Perm(usize),
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Arg(i) => write!(f, "a{i}"),
            Slot::Temp(k) => write!(f, "x{k}"),
            Slot::Perm(k) => write!(f, "y{k}"),
        }
    }
}

/// An atomic constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Atom constant.
    Atom(Atom),
}

impl Const {
    /// Renders the constant using `symbols`.
    pub fn display(self, symbols: &SymbolTable) -> String {
        match self {
            Const::Int(i) => i.to_string(),
            Const::Atom(a) => symbols.name(a).to_owned(),
        }
    }
}

/// A functor: name plus arity (arity >= 1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Functor {
    /// Interned name.
    pub name: Atom,
    /// Arity (1..=255; arity 0 constants are [`Const::Atom`]).
    pub arity: usize,
}

impl Functor {
    /// Creates a functor.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is 0 or exceeds 255 (the word encoding packs
    /// the arity into the low byte).
    pub fn new(name: Atom, arity: usize) -> Self {
        assert!(
            (1..=255).contains(&arity),
            "functor arity {arity} out of the encodable 1..=255 range"
        );
        Functor { name, arity }
    }

    /// The packed word-value encoding: `name << 8 | arity`.
    pub fn encode(self) -> i64 {
        ((self.name.0 as i64) << 8) | self.arity as i64
    }

    /// Inverse of [`Functor::encode`].
    pub fn decode(value: i64) -> Self {
        Functor {
            name: Atom((value >> 8) as u32),
            arity: (value & 0xff) as usize,
        }
    }
}

/// Label local to one predicate's code.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BamLabel(pub u32);

impl fmt::Display for BamLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Tag classes testable by a single hardware tag branch.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TagClass {
    /// Unbound variable reference.
    Var,
    /// Integer.
    Int,
    /// Atom.
    Atm,
    /// List cell.
    Lst,
    /// Structure.
    Str,
}

/// Arithmetic operations of `is/2`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division (`//` and `/` on integers).
    Div,
    /// Floored modulo (`mod`): the result takes the divisor's sign.
    Mod,
    /// Truncated remainder (`rem`): the result takes the dividend's
    /// sign.
    Rem,
    /// Bitwise and (`/\`).
    And,
    /// Bitwise or (`\/`).
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Maximum of the operands.
    Max,
}

/// Arithmetic comparison conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `=:=`
    Eq,
    /// `=\=`
    Ne,
    /// `<`
    Lt,
    /// `=<`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }
}

/// An operand of a BAM instruction: a slot or a constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Register/environment slot.
    Slot(Slot),
    /// Immediate constant.
    Const(Const),
}

/// One BAM abstract instruction.
///
/// See the module docs for the design rationale. `FAIL` is not a label:
/// failing control transfers (`Fail`, the implicit failure of `Bind`
/// comparisons, etc.) jump to the global backtracking routine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BamInstr {
    /// Pseudo-instruction: defines a local label.
    Label(BamLabel),
    /// Unconditional local jump.
    Jump(BamLabel),
    /// Backtrack: undo to the newest choice point and resume there.
    Fail,

    /// Call `pred`, setting the continuation to the next instruction.
    Call(PredId),
    /// Tail-call `pred` (continuation unchanged).
    Execute(PredId),
    /// Return through the continuation register.
    Proceed,
    /// Push an environment frame with `n` permanent slots.
    Allocate(usize),
    /// Pop the current environment frame.
    Deallocate,

    /// Push a choice point for a predicate of arity `arity`; on failure
    /// resume at `retry`; fall through to the first alternative.
    Try {
        /// Predicate arity (number of argument registers to save).
        arity: usize,
        /// First alternative.
        first: BamLabel,
        /// Code address (label) of the following `Retry`/`Trust`.
        retry: BamLabel,
    },
    /// Re-enter after failure: restore `arity` argument registers,
    /// update the retry address, continue at `next_alt`.
    Retry {
        /// Predicate arity.
        arity: usize,
        /// Alternative to run now.
        alt: BamLabel,
        /// Label of the following `Retry`/`Trust` instruction.
        retry: BamLabel,
    },
    /// Last alternative: restore registers, pop the choice point,
    /// continue at `alt`.
    Trust {
        /// Predicate arity.
        arity: usize,
        /// Alternative to run now.
        alt: BamLabel,
    },
    /// Four-way dispatch on the dereferenced tag of `Arg(arg)`.
    /// The dereferenced value is left in `scratch` for reuse by the
    /// selected branch.
    SwitchOnTerm {
        /// Index of the argument register switched on.
        arg: usize,
        /// Slot receiving the dereferenced value.
        scratch: Slot,
        /// Target when unbound.
        var: BamLabel,
        /// Target when integer or atom.
        cons: BamLabel,
        /// Target when list.
        lst: BamLabel,
        /// Target when structure.
        strct: BamLabel,
    },
    /// Linear dispatch on an already-dereferenced constant in `slot`.
    SwitchOnConst {
        /// Slot holding the dereferenced constant.
        slot: Slot,
        /// (constant, target) pairs.
        table: Vec<(Const, BamLabel)>,
        /// Taken when nothing matches (usually fails).
        default: BamLabel,
    },
    /// Linear dispatch on the functor of a structure in `slot`.
    SwitchOnStruct {
        /// Slot holding the dereferenced structure pointer.
        slot: Slot,
        /// (functor, target) pairs.
        table: Vec<(Functor, BamLabel)>,
        /// Taken when nothing matches (usually fails).
        default: BamLabel,
    },

    /// Capture the cut barrier register at predicate entry
    /// (`B0 := B`), before any choice point is pushed.
    SetCutBarrier,
    /// Save the cut barrier into a permanent slot.
    SaveCutBarrier(Slot),
    /// Cut: discard choice points newer than the barrier
    /// (`None` = the barrier register set at predicate entry).
    Cut(Option<Slot>),

    /// Register/slot move (no dereference).
    Move {
        /// Source operand.
        src: Operand,
        /// Destination slot.
        dst: Slot,
    },
    /// Move the value of a permanent variable into `dst`, globalizing
    /// it first if it dereferences to an unbound cell of the current
    /// (about to be deallocated) environment — the WAM's
    /// `put_unsafe_value`.
    MoveUnsafe {
        /// Source (permanent) slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// Full dereference: `dst = deref(src)`.
    Deref {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `dst = heap[src + idx]` — load an argument of a list/structure.
    LoadArg {
        /// Slot holding a list or structure pointer.
        base: Slot,
        /// Word offset (0 = car / functor, 1 = cdr / first arg, ...).
        idx: usize,
        /// Destination slot.
        dst: Slot,
    },

    /// Branch to `target` if `slot` holds an unbound variable.
    BranchVar {
        /// Tested slot (must be dereferenced).
        slot: Slot,
        /// Branch target.
        target: BamLabel,
    },
    /// Branch to `target` if the tag of `slot` is NOT `tag`.
    BranchNotTag {
        /// Tested slot (must be dereferenced).
        slot: Slot,
        /// Expected tag class.
        tag: TagClass,
        /// Branch target.
        target: BamLabel,
    },
    /// Branch to `target` if `slot` does not hold exactly constant `c`.
    BranchNotConst {
        /// Tested slot (must be dereferenced).
        slot: Slot,
        /// Expected constant.
        c: Const,
        /// Branch target.
        target: BamLabel,
    },
    /// Branch to `target` if the functor word of the structure in
    /// `slot` is not `f`.
    BranchNotFunctor {
        /// Slot holding a structure pointer.
        slot: Slot,
        /// Expected functor.
        f: Functor,
        /// Branch target.
        target: BamLabel,
    },

    /// Bind the unbound variable in `var` to constant `c` (with trail).
    BindConst {
        /// Slot holding a dereferenced unbound variable.
        var: Slot,
        /// Constant to bind to.
        c: Const,
    },
    /// Bind the unbound variable in `var` to the value in `value`.
    BindSlot {
        /// Slot holding a dereferenced unbound variable.
        var: Slot,
        /// Value to bind to.
        value: Slot,
    },
    /// `dst = <Lst, H>`: a list pointer to the current heap top.
    NewList {
        /// Destination slot.
        dst: Slot,
    },
    /// `dst = <Str, H>; heap[H++] = functor f`.
    NewStruct {
        /// Destination slot.
        dst: Slot,
        /// Functor pushed as the first word.
        f: Functor,
    },
    /// `heap[H++] = c`.
    PushConst {
        /// Constant pushed.
        c: Const,
    },
    /// `heap[H++] = src`.
    PushValue {
        /// Slot pushed.
        src: Slot,
    },
    /// Push a fresh unbound variable and leave a reference in `dst`.
    PushFresh {
        /// Destination slot.
        dst: Slot,
    },
    /// Full unification of two slots (calls the runtime routine;
    /// backtracks on mismatch).
    GeneralUnify {
        /// Left term.
        a: Slot,
        /// Right term.
        b: Slot,
    },
    /// Structural equality test (no binding): branch to `target` when
    /// the equality result does not match `want_equal`.
    StructEqBranch {
        /// Left term.
        a: Slot,
        /// Right term.
        b: Slot,
        /// `true` for `==/2` (branch when unequal), `false` for `\==`.
        want_equal: bool,
        /// Branch target (usually fail).
        target: BamLabel,
    },

    /// Dereference `src` and verify it is an integer (backtracks
    /// otherwise), leaving the integer in `dst`.
    DerefInt {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// Integer arithmetic on dereferenced values.
    Arith {
        /// Operation.
        op: ArithOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination slot (tagged integer result).
        dst: Slot,
    },
    /// Branch to `target` if the comparison `a cmp b` FAILS.
    BranchCmpFalse {
        /// Condition that must hold to fall through.
        cmp: Cmp,
        /// Left operand (dereferenced integer).
        a: Operand,
        /// Right operand (dereferenced integer).
        b: Operand,
        /// Branch target (usually fail).
        target: BamLabel,
    },
    /// Branch if the tag of the dereferenced `slot` is / is not in the
    /// atomic classes required by a type-test builtin.
    TypeTestBranch {
        /// Tested slot (must be dereferenced).
        slot: Slot,
        /// The type test.
        test: TypeTest,
        /// Branch taken when the test FAILS.
        target: BamLabel,
    },
    /// Stop execution reporting success or failure (driver code only).
    Halt {
        /// Whether the query succeeded.
        success: bool,
    },
}

/// Type-test builtins compiled to tag branches.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TypeTest {
    /// `var/1`.
    Var,
    /// `nonvar/1`.
    NonVar,
    /// `atom/1`.
    Atom,
    /// `integer/1`.
    Integer,
    /// `atomic/1` (atom or integer).
    Atomic,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functor_encoding_round_trips() {
        let f = Functor::new(Atom(1234), 7);
        assert_eq!(Functor::decode(f.encode()), f);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn functor_arity_zero_rejected() {
        Functor::new(Atom(1), 0);
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::Arg(0).to_string(), "a0");
        assert_eq!(Slot::Temp(3).to_string(), "x3");
        assert_eq!(Slot::Perm(2).to_string(), "y2");
    }
}
