//! A minimal JSON writer — just enough for the exporters, so the crate
//! stays free of external dependencies.
//!
//! Only object/array/string/integer shapes are produced; floats are
//! written with a fixed precision by the callers that need them. The
//! writer guarantees valid UTF-8 JSON output with correct string
//! escaping.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `"s"` with escaping.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders a label set as a JSON object with keys in the stored order
/// (callers keep labels sorted, making the output canonical).
pub fn label_object(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&string(k));
        out.push_str(": ");
        out.push_str(&string(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn label_objects_are_canonical() {
        let labels = vec![
            ("bench".to_string(), "qsort".to_string()),
            ("mode".to_string(), "trace".to_string()),
        ];
        assert_eq!(
            label_object(&labels),
            "{\"bench\": \"qsort\", \"mode\": \"trace\"}"
        );
        assert_eq!(label_object(&[]), "{}");
    }
}
