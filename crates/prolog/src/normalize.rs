//! Clause normalization.
//!
//! Rewrites control constructs into plain clauses so the compiler only
//! ever sees conjunctions of simple goals:
//!
//! * `(C -> T ; E)` becomes an auxiliary predicate with a cut:
//!   `'$ite_k'(Vs) :- C, !, T.` / `'$ite_k'(Vs) :- E.`
//! * `(A ; B)` becomes `'$or_k'(Vs) :- A.` / `'$or_k'(Vs) :- B.`
//! * `\+ G` becomes `'$not_k'(Vs) :- G, !, fail.` / `'$not_k'(Vs).`
//!
//! `Vs` is the set of variables occurring in the construct, so bindings
//! flow in and out exactly as in the source program.
//!
//! Known limitation (documented in DESIGN.md): a cut written *inside* a
//! disjunction or if-then-else branch is local to the auxiliary
//! predicate rather than cutting the enclosing clause. The shipped
//! benchmarks do not rely on that corner of the semantics.

use crate::ast::{Clause, Term};
use crate::parser::RawClause;
use crate::symbols::{wk, SymbolTable};
use std::collections::HashMap;

/// Normalizes raw parsed clauses into flat [`Clause`]s, appending any
/// auxiliary predicates generated along the way.
pub fn normalize_clauses(raw: Vec<RawClause>, symbols: &mut SymbolTable) -> Vec<Clause> {
    let mut ctx = Ctx {
        symbols,
        out: Vec::new(),
        counter: 0,
    };
    for rc in raw {
        ctx.normalize_one(rc);
    }
    ctx.out
}

struct Ctx<'a> {
    symbols: &'a mut SymbolTable,
    out: Vec<Clause>,
    counter: usize,
}

impl Ctx<'_> {
    fn normalize_one(&mut self, rc: RawClause) {
        let RawClause { term, var_names } = rc;
        let (head, body_term) = match term {
            Term::Struct(f, mut args) if f == wk::NECK && args.len() == 2 => {
                let body = args.pop().expect("binary neck");
                let head = args.pop().expect("binary neck");
                (head, Some(body))
            }
            // Directives (`:- G.`) are ignored: the benchmark driver
            // always calls `main/0` explicitly.
            Term::Struct(f, args) if f == wk::NECK && args.len() == 1 => {
                let _ = args;
                return;
            }
            other => (other, None),
        };
        let mut goals = Vec::new();
        if let Some(b) = body_term {
            self.flatten(b, &var_names, &mut goals);
        }
        self.out.push(Clause::new(head, goals, var_names));
    }

    fn flatten(&mut self, goal: Term, var_names: &[String], acc: &mut Vec<Term>) {
        match goal {
            Term::Struct(f, mut args) if f == wk::COMMA && args.len() == 2 => {
                let b = args.pop().expect("binary comma");
                let a = args.pop().expect("binary comma");
                self.flatten(a, var_names, acc);
                self.flatten(b, var_names, acc);
            }
            Term::Atom(a) if a == wk::TRUE => {}
            Term::Struct(f, mut args) if f == wk::SEMICOLON && args.len() == 2 => {
                let else_ = args.pop().expect("binary ;");
                let left = args.pop().expect("binary ;");
                match left {
                    Term::Struct(g, mut ct) if g == wk::ARROW && ct.len() == 2 => {
                        let then = ct.pop().expect("binary ->");
                        let cond = ct.pop().expect("binary ->");
                        self.emit_ite(cond, then, else_, var_names, acc);
                    }
                    other => self.emit_or(other, else_, var_names, acc),
                }
            }
            Term::Struct(f, mut args) if f == wk::ARROW && args.len() == 2 => {
                let then = args.pop().expect("binary ->");
                let cond = args.pop().expect("binary ->");
                self.emit_ite(cond, then, Term::Atom(wk::FAIL), var_names, acc);
            }
            Term::Struct(f, mut args) if f == wk::NAF && args.len() == 1 => {
                let g = args.pop().expect("unary \\+");
                self.emit_not(g, var_names, acc);
            }
            Term::Var(v) => panic!(
                "meta-call of a variable goal (_V{v}) is not supported by the SYMBOL compiler"
            ),
            simple => acc.push(simple),
        }
    }

    fn emit_ite(
        &mut self,
        cond: Term,
        then: Term,
        else_: Term,
        var_names: &[String],
        acc: &mut Vec<Term>,
    ) {
        let mut vars = Vec::new();
        cond.collect_vars(&mut vars);
        then.collect_vars(&mut vars);
        else_.collect_vars(&mut vars);
        let aux = self.fresh_aux("$ite");
        let then_body = conj(vec![cond, Term::Atom(wk::CUT), then]);
        self.emit_aux_clause(aux, &vars, then_body, var_names);
        self.emit_aux_clause(aux, &vars, else_, var_names);
        acc.push(aux_goal(aux, &vars));
    }

    fn emit_or(&mut self, a: Term, b: Term, var_names: &[String], acc: &mut Vec<Term>) {
        let mut vars = Vec::new();
        a.collect_vars(&mut vars);
        b.collect_vars(&mut vars);
        let aux = self.fresh_aux("$or");
        self.emit_aux_clause(aux, &vars, a, var_names);
        self.emit_aux_clause(aux, &vars, b, var_names);
        acc.push(aux_goal(aux, &vars));
    }

    fn emit_not(&mut self, g: Term, var_names: &[String], acc: &mut Vec<Term>) {
        let mut vars = Vec::new();
        g.collect_vars(&mut vars);
        let aux = self.fresh_aux("$not");
        let fail_body = conj(vec![g, Term::Atom(wk::CUT), Term::Atom(wk::FAIL)]);
        self.emit_aux_clause(aux, &vars, fail_body, var_names);
        self.emit_aux_clause(aux, &vars, Term::Atom(wk::TRUE), var_names);
        acc.push(aux_goal(aux, &vars));
    }

    fn fresh_aux(&mut self, prefix: &str) -> crate::symbols::Atom {
        let name = format!("{prefix}_{}", self.counter);
        self.counter += 1;
        self.symbols.intern(&name)
    }

    /// Emits `aux(V0..Vn) :- body`, renumbering the construct's outer
    /// variable indices into a fresh clause-local space, and recursively
    /// normalizing the body (it may contain further control constructs).
    fn emit_aux_clause(
        &mut self,
        aux: crate::symbols::Atom,
        vars: &[usize],
        body: Term,
        outer_names: &[String],
    ) {
        let mut map: HashMap<usize, usize> = HashMap::new();
        let mut names = Vec::new();
        for (new, &old) in vars.iter().enumerate() {
            map.insert(old, new);
            names.push(outer_names.get(old).cloned().unwrap_or_else(|| "_".into()));
        }
        let head_args: Vec<Term> = (0..vars.len()).map(Term::Var).collect();
        let head = if head_args.is_empty() {
            Term::Atom(aux)
        } else {
            Term::Struct(aux, head_args)
        };
        let body = renumber(body, &map);
        let term = Term::Struct(wk::NECK, vec![head, body]);
        self.normalize_one(RawClause {
            term,
            var_names: names,
        });
    }
}

fn aux_goal(aux: crate::symbols::Atom, vars: &[usize]) -> Term {
    if vars.is_empty() {
        Term::Atom(aux)
    } else {
        Term::Struct(aux, vars.iter().map(|&v| Term::Var(v)).collect())
    }
}

fn conj(goals: Vec<Term>) -> Term {
    let mut it = goals.into_iter().rev();
    let last = it.next().expect("conj of at least one goal");
    it.fold(last, |acc, g| Term::Struct(wk::COMMA, vec![g, acc]))
}

fn renumber(t: Term, map: &HashMap<usize, usize>) -> Term {
    match t {
        Term::Var(v) => Term::Var(*map.get(&v).expect("construct var set is complete")),
        Term::Int(_) | Term::Atom(_) => t,
        Term::Struct(f, args) => {
            Term::Struct(f, args.into_iter().map(|a| renumber(a, map)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_clauses;

    fn normalize(src: &str) -> (Vec<Clause>, SymbolTable) {
        let mut s = SymbolTable::new();
        let raw = parse_clauses(src, &mut s).unwrap();
        let cs = normalize_clauses(raw, &mut s);
        (cs, s)
    }

    #[test]
    fn fact_and_rule() {
        let (cs, _) = normalize("a. b :- a, a.");
        assert_eq!(cs.len(), 2);
        assert!(cs[0].body.is_empty());
        assert_eq!(cs[1].body.len(), 2);
    }

    #[test]
    fn true_is_dropped() {
        let (cs, _) = normalize("a :- true.");
        assert!(cs[0].body.is_empty());
    }

    #[test]
    fn disjunction_becomes_aux_pred() {
        let (cs, s) = normalize("p(X) :- (q(X) ; r(X)).");
        // two aux clauses + the original
        assert_eq!(cs.len(), 3);
        let aux = s.lookup("$or_0").unwrap();
        // aux clauses precede the rewritten original
        assert_eq!(cs[0].pred(), (aux, 1));
        assert_eq!(cs[1].pred(), (aux, 1));
        assert_eq!(cs[2].body.len(), 1);
        assert_eq!(cs[2].body[0].functor(), Some((aux, 1)));
    }

    #[test]
    fn ite_gets_cut() {
        let (cs, s) = normalize("p(X) :- (q(X) -> r(X) ; s(X)).");
        let aux = s.lookup("$ite_0").unwrap();
        let then_clause = cs
            .iter()
            .find(|c| c.pred() == (aux, 1) && c.body.len() == 3);
        let then_clause = then_clause.expect("then-branch clause");
        assert_eq!(then_clause.body[1], Term::Atom(wk::CUT));
    }

    #[test]
    fn negation_as_failure_shape() {
        let (cs, s) = normalize("p(X) :- \\+ q(X), r(X).");
        let aux = s.lookup("$not_0").unwrap();
        let fail_clause = cs
            .iter()
            .find(|c| c.pred() == (aux, 1) && !c.body.is_empty());
        let fail_clause = fail_clause.expect("failing clause");
        assert_eq!(fail_clause.body[1], Term::Atom(wk::CUT));
        assert_eq!(fail_clause.body[2], Term::Atom(wk::FAIL));
        // the success clause is a fact
        assert!(cs.iter().any(|c| c.pred() == (aux, 1) && c.body.is_empty()));
    }

    #[test]
    fn nested_constructs_recurse() {
        let (cs, s) = normalize("p :- (a ; (b ; c)).");
        assert!(s.lookup("$or_0").is_some());
        assert!(s.lookup("$or_1").is_some());
        assert_eq!(cs.len(), 5);
    }

    #[test]
    fn directive_is_ignored() {
        let (cs, _) = normalize(":- something. a.");
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn aux_vars_are_renumbered_densely() {
        let (cs, s) = normalize("p(A, B, C) :- x(C), (q(C, B) ; r(B)).");
        let aux = s.lookup("$or_0").unwrap();
        let c0 = cs.iter().find(|c| c.pred() == (aux, 2)).unwrap();
        // aux head is $or_0(V0, V1) with dense locals
        assert_eq!(c0.head, Term::Struct(aux, vec![Term::Var(0), Term::Var(1)]));
    }

    #[test]
    #[should_panic(expected = "meta-call")]
    fn variable_goal_panics() {
        normalize("p(X) :- X.");
    }
}
