% tak -- the Takeuchi function, tak(18,12,6) = 7 (Aquarius "tak").
% Heavy deterministic recursion with shallow backtracking on the guard.

main :- tak(18, 12, 6, A), A = 7.

tak(X, Y, Z, A) :- X =< Y, Z = A.
tak(X, Y, Z, A) :-
    X > Y,
    X1 is X - 1, tak(X1, Y, Z, A1),
    Y1 is Y - 1, tak(Y1, Z, X, A2),
    Z1 is Z - 1, tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
