% conc30 -- concatenate a 30-element list (Aquarius benchmark "conc30").
% Deterministic list traversal; the smallest benchmark in the suite.

main :-
    conc([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
          16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],
         [31,32],
         R),
    R = [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
         16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32].

conc([], L, L).
conc([X|T], L, [X|R]) :- conc(T, L, R).
